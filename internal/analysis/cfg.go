// Intra-procedural control-flow graphs with dominator and
// reachability queries, the shared substrate of the flow-aware
// analyzers (walack, lockorder, atomicpub). A position-based check can
// say "a Lock appears earlier in the source"; only a CFG can say "the
// WAL append runs on every path to this ack" (dominance) or "this
// write can execute after the Store, via the loop back-edge"
// (reachability). The design mirrors golang.org/x/tools/go/cfg but,
// like the rest of this package, depends on the standard library
// alone.
//
// Granularity is the statement: every simple statement, loop/if
// init/condition, and switch tag becomes one node in some basic
// block. Function literals are opaque — their bodies are not part of
// the enclosing function's graph, and analyzers must skip them when
// collecting the positions they query (a position inside a FuncLit
// resolves to the statement that contains the literal).
//
// The graph is syntactic: panic() calls and return statements
// terminate a path, but a call that never returns is not modeled, and
// defer is represented as the point where the call is scheduled, not
// where it runs. Those approximations are deliberate — the analyzers
// built on top treat deferred cleanup specially (a deferred Unlock
// holds the lock to function end).
package analysis

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block.
type CFG struct {
	Blocks []*Block

	// node spans in source order for PosToNode; built on demand.
	spans []nodeSpan
}

// Block is one basic block: statements that execute sequentially,
// followed by a transfer of control to one of Succs.
type Block struct {
	Index int
	Nodes []ast.Node // statements and control expressions, in order
	Succs []*Block
	Preds []*Block

	reachable bool
	dom       []bool // dom[i]: Blocks[i] dominates this block
}

type nodeSpan struct {
	node  ast.Node
	block *Block
	index int // position of node within block.Nodes
}

// NewCFG builds the control-flow graph of body and computes
// reachability and dominators. body may be nil (external or empty
// function), in which case the graph has a single empty entry block.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	entry := b.newBlock()
	b.cur = entry
	if body != nil {
		b.stmt(body)
	}
	g := b.cfg
	g.wire()
	g.computeDominators()
	g.indexSpans()
	return g
}

// --- queries ---

// Dominates reports whether the node containing a executes on every
// path from function entry to the node containing b. A node dominates
// itself; within one basic block, earlier nodes dominate later ones.
// It returns false when either position maps to no node (e.g. inside
// a nested function literal that was itself the statement).
func (g *CFG) Dominates(a, b token.Pos) bool {
	sa, sb := g.span(a), g.span(b)
	if sa == nil || sb == nil || !sb.block.reachable {
		return false
	}
	if sa.block == sb.block {
		return sa.index <= sb.index
	}
	return sb.block.dom[sa.block.Index]
}

// Reaches reports whether control can flow from the node containing a
// to the node containing b — strictly onward: within one block it
// requires a to precede b, unless the block lies on a cycle.
func (g *CFG) Reaches(a, b token.Pos) bool {
	sa, sb := g.span(a), g.span(b)
	if sa == nil || sb == nil {
		return false
	}
	if sa.block == sb.block && sa.index < sb.index {
		return true
	}
	// Otherwise control must leave sa.block and re-enter sb.block.
	seen := make([]bool, len(g.Blocks))
	work := make([]*Block, 0, len(sa.block.Succs))
	work = append(work, sa.block.Succs...)
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[blk.Index] {
			continue
		}
		seen[blk.Index] = true
		if blk == sb.block {
			return true
		}
		work = append(work, blk.Succs...)
	}
	return false
}

// span returns the innermost recorded node span containing pos, or nil.
func (g *CFG) span(pos token.Pos) *nodeSpan {
	var best *nodeSpan
	for i := range g.spans {
		s := &g.spans[i]
		if s.node.Pos() <= pos && pos < s.node.End() {
			if best == nil || s.node.End()-s.node.Pos() <= best.node.End()-best.node.Pos() {
				best = s
			}
		}
	}
	return best
}

// --- post-construction passes ---

func (g *CFG) wire() {
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	// Reachability from entry.
	var mark func(*Block)
	mark = func(blk *Block) {
		if blk.reachable {
			return
		}
		blk.reachable = true
		for _, s := range blk.Succs {
			mark(s)
		}
	}
	if len(g.Blocks) > 0 {
		mark(g.Blocks[0])
	}
}

// computeDominators runs the classic iterative dataflow:
// dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(pred). Unreachable
// blocks keep empty dominator sets and fail every query.
func (g *CFG) computeDominators() {
	n := len(g.Blocks)
	if n == 0 {
		return
	}
	for _, blk := range g.Blocks {
		blk.dom = make([]bool, n)
		if !blk.reachable {
			continue
		}
		if blk.Index == 0 {
			blk.dom[0] = true
			continue
		}
		for i := range blk.dom {
			blk.dom[i] = true // ⊤, refined by intersection
		}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			if blk.Index == 0 || !blk.reachable {
				continue
			}
			for i := 0; i < n; i++ {
				if i == blk.Index || !blk.dom[i] {
					continue
				}
				// Keep i only if every reachable predecessor has it.
				for _, p := range blk.Preds {
					if p.reachable && !p.dom[i] {
						blk.dom[i] = false
						changed = true
						break
					}
				}
			}
		}
	}
}

func (g *CFG) indexSpans() {
	for _, blk := range g.Blocks {
		for i, node := range blk.Nodes {
			g.spans = append(g.spans, nodeSpan{node: node, block: blk, index: i})
		}
	}
}

// --- construction ---

type builder struct {
	cfg *CFG
	cur *Block // nil after a terminating statement (return, panic, …)

	// break/continue targets of the enclosing loops and switches.
	breaks    []*Block
	continues []*Block
	// label -> targets, for labeled break/continue/goto.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	gotoTargets   map[string]*Block
	// pendingLabel names the label attached to the next loop or
	// switch, so pushLoop/pushBreak can register its targets.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends a node to the current block, opening an unreachable one
// after a terminator so stray statements still get spans.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump links the current block to target and ends it.
func (b *builder) jump(target *Block) {
	if b.cur != nil && target != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

// branch links the current block to each target and continues in next.
func (b *builder) branch(next *Block, targets ...*Block) {
	if b.cur != nil {
		for _, t := range targets {
			b.cur.Succs = append(b.cur.Succs, t)
		}
	}
	b.cur = next
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		thenBlk := b.newBlock()
		after := b.newBlock()
		elseTarget := after
		var elseBlk *Block
		if s.Else != nil {
			elseBlk = b.newBlock()
			elseTarget = elseBlk
		}
		b.branch(nil, thenBlk, elseTarget)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			b.cur = elseBlk
			b.stmt(s.Else)
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.branch(nil, body, after)
		} else {
			b.branch(nil, body) // for {}: after only reachable via break
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.pushLoop(after, post)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		b.cur = head
		b.add(s) // the range clause itself: X evaluation + iteration vars
		b.branch(nil, body, after)
		b.pushLoop(after, head)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, false)

	case *ast.SelectStmt:
		b.switchBody(s.Body, true)

	case *ast.LabeledStmt:
		target := b.gotoTarget(s.Label.Name)
		b.jump(target)
		b.cur = target
		// Pre-register loop targets so `break L` / `continue L` resolve.
		b.stmtLabeled(s.Label.Name, s.Stmt)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.jump(b.labelBreak[s.Label.Name])
			} else if len(b.breaks) > 0 {
				b.jump(b.breaks[len(b.breaks)-1])
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if s.Label != nil {
				b.jump(b.labelContinue[s.Label.Name])
			} else if len(b.continues) > 0 {
				b.jump(b.continues[len(b.continues)-1])
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.gotoTarget(s.Label.Name))
		case token.FALLTHROUGH:
			// Handled by switchBody: the clause block already links to
			// the next clause. Terminate here; switchBody re-links.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.cur = nil
			}
		}

	case nil:
		// nothing

	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

// stmtLabeled handles the statement under a label, registering
// break/continue targets when it is a loop or switch.
func (b *builder) stmtLabeled(label string, s ast.Stmt) {
	if b.labelBreak == nil {
		b.labelBreak = make(map[string]*Block)
		b.labelContinue = make(map[string]*Block)
	}
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// The loop/switch builders push their after/post blocks; we
		// need them registered under the label before the body builds.
		// Arrange for pushLoop/pushBreak to pick the label up.
		b.pendingLabel = label
	}
	b.stmt(s)
	delete(b.labelBreak, label)
	delete(b.labelContinue, label)
}

func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.labelContinue[b.pendingLabel] = cont
		b.pendingLabel = ""
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(brk *Block) {
	b.breaks = append(b.breaks, brk)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.pendingLabel = ""
	}
}

func (b *builder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// switchBody builds the clause blocks of a switch/type-switch/select.
// isSelect marks select statements (no fallthrough, no implicit "no
// case matched" fallthrough to after — a select with no default
// blocks, which the graph approximates as all-cases).
func (b *builder) switchBody(body *ast.BlockStmt, isSelect bool) {
	after := b.newBlock()
	var clauses []*Block
	hasDefault := false
	for range body.List {
		clauses = append(clauses, b.newBlock())
	}
	// The dispatching block branches to every clause; without a
	// default clause control may also skip to after.
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
		}
	}
	targets := make([]*Block, len(clauses))
	copy(targets, clauses)
	if !hasDefault && !isSelect {
		targets = append(targets, after)
	}
	b.branch(nil, targets...)
	b.pushBreak(after)
	for i, c := range body.List {
		b.cur = clauses[i]
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				b.add(e)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				b.stmt(c.Comm)
			}
			list = c.Body
		}
		fell := false
		for _, st := range list {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				b.add(br)
				if i+1 < len(clauses) {
					b.jump(clauses[i+1])
				} else {
					b.cur = nil
				}
				fell = true
				break
			}
			b.stmt(st)
		}
		if !fell {
			b.jump(after)
		}
	}
	b.popBreak()
	b.cur = after
}

func (b *builder) gotoTarget(label string) *Block {
	if b.gotoTargets == nil {
		b.gotoTargets = make(map[string]*Block)
	}
	if blk, ok := b.gotoTargets[label]; ok {
		return blk
	}
	blk := b.newBlock()
	b.gotoTargets[label] = blk
	return blk
}

// InspectBlockNode walks one of a Block's Nodes like ast.Inspect, but
// confined to the part of the node that actually belongs to the block:
// a RangeStmt node carries only its range clause (the iteration
// variables and the ranged expression) — its body was decomposed into
// other blocks and would otherwise be visited twice.
func InspectBlockNode(n ast.Node, f func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.Key != nil {
			ast.Inspect(r.Key, f)
		}
		if r.Value != nil {
			ast.Inspect(r.Value, f)
		}
		ast.Inspect(r.X, f)
		return
	}
	ast.Inspect(n, f)
}
