// Fixture for the lockorder analyzer. The test registers two
// documented orders for this package: DB.mu before DB.ioMu, and
// Store.mu before Store.flushMu. Pool has no documented order and is
// caught purely by cycle detection.
package lockfix

import "sync"

// DB documents mu before ioMu.
type DB struct {
	mu   sync.Mutex
	ioMu sync.Mutex
}

// ok takes both locks but never holds them together: the release on
// every branch kills the held set before mu is acquired.
func (d *DB) ok(fast bool) {
	d.ioMu.Lock()
	if fast {
		d.ioMu.Unlock()
	} else {
		d.ioMu.Unlock()
	}
	d.mu.Lock()
	d.mu.Unlock()
}

// inverted acquires mu while a deferred unlock still holds ioMu: the
// deferred release runs at exit, so ioMu is held at the mu acquisition.
func (d *DB) inverted() {
	d.ioMu.Lock()
	defer d.ioMu.Unlock()
	d.mu.Lock() // want "acquires DB.mu while holding DB.ioMu: the documented order is mu before ioMu"
	d.mu.Unlock()
}

// Store documents mu before flushMu.
type Store struct {
	mu      sync.Mutex
	flushMu sync.Mutex
}

// flushLocked runs with flushMu already held by its caller, so taking
// mu here inverts the documented order even with no Lock call in sight.
//
//predmatchvet:holds flushMu
func (s *Store) flushLocked() {
	s.mu.Lock() // want "acquires Store.mu while holding Store.flushMu: the documented order is mu before flushMu"
	s.mu.Unlock()
}

// Pool has no documented order; the two methods below acquire its
// locks in opposite orders, which is a deadlock cycle.
type Pool struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *Pool) lockAB() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pool) lockBA() {
	p.b.Lock()
	p.a.Lock() // want "lock-order cycle among Pool.a, Pool.b"
	p.a.Unlock()
	p.b.Unlock()
}
