package lockorder_test

import (
	"testing"

	"predmatch/internal/analysis/analysistest"
	"predmatch/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	saved := lockorder.Orders
	lockorder.Orders = append(append([]lockorder.Order{}, saved...),
		lockorder.Order{Pkg: "lockfix", Type: "DB", Before: "mu", After: "ioMu"},
		lockorder.Order{Pkg: "lockfix", Type: "Store", Before: "mu", After: "flushMu"},
	)
	defer func() { lockorder.Orders = saved }()
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockfix")
}
