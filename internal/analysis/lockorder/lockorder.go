// Package lockorder defines an analyzer that derives each package's
// lock graph and reports acquisition orders that can deadlock.
//
// Nodes are mutex fields of named structs (sync.Mutex / sync.RWMutex).
// An edge A → B means some function acquires B while it may already
// hold A. "May hold" is computed by a dataflow over the framework's
// CFG: a Lock/RLock generates the lock, a non-deferred Unlock/RUnlock
// kills it, block entry is the union over predecessors — so a lock
// taken on one branch and still held at the join is tracked, a lock
// released before the join is not, and a deferred Unlock (which runs
// at function exit) holds to the end. Functions running with a lock
// already held by contract declare it with the same directive
// guardedby uses:
//
//	//predmatchvet:holds mu
//
// which seeds the held set at entry, so the edge mu → subMu inside a
// callback invoked under mu is still seen.
//
// Two checks run over the finished graph:
//
//   - every edge violating a documented order (Orders) is reported at
//     the acquisition that creates it;
//   - every strongly connected component of two or more locks is a
//     potential deadlock cycle, reported once at its newest edge.
//
// The graph is per-package and intraprocedural (each subsystem's lock
// hierarchy lives within one package here), and the receiver
// expression is ignored: two instances of the same struct type count
// as the same node, which is conservative in the right direction for
// order checking and matches how the repo documents its hierarchies
// ("Log.mu before Log.syncMu", not "this log's mu").
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"predmatch/internal/analysis"
)

// Order documents one required acquisition order within a package:
// Before is taken first, so acquiring Before while holding After is a
// violation.
type Order struct {
	Pkg    string // package path the order applies to
	Type   string // struct holding both mutexes
	Before string // mutex documented to be acquired first
	After  string // mutex documented to be acquired second
}

// Orders are the repository's documented lock hierarchies (see
// internal/wal/log.go and docs/DURABILITY.md). Tests append fixture
// entries.
var Orders = []Order{
	{Pkg: "predmatch/internal/wal", Type: "Log", Before: "mu", After: "syncMu"},
	{Pkg: "predmatch/internal/server", Type: "Server", Before: "mu", After: "subMu"},
	{Pkg: "predmatch/internal/server", Type: "Server", Before: "connMu", After: "subMu"},
}

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions must follow the documented order and form no cycles",
	Run:  run,
}

// node identifies one mutex: a field of a named struct.
type node struct {
	typ   *types.TypeName // origin object of the struct type
	field string
}

func (n node) String() string { return n.typ.Name() + "." + n.field }

// edge records that to was acquired while from was held, at pos.
type edge struct {
	from, to node
	pos      token.Pos
}

// lockEvent is one Lock/Unlock call inside a CFG node.
type lockEvent struct {
	n       node
	acquire bool
	shared  bool // RLock/RUnlock
	pos     token.Pos
}

func run(pass *analysis.Pass) error {
	g := &graph{edges: make(map[[2]node]edge)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeFunc(pass, fd, g)
		}
	}
	g.report(pass)
	return nil
}

type graph struct {
	edges map[[2]node]edge
}

func (g *graph) add(from, to node, pos token.Pos) {
	if from == to {
		return
	}
	key := [2]node{from, to}
	if e, ok := g.edges[key]; !ok || pos < e.pos {
		g.edges[key] = edge{from: from, to: to, pos: pos}
	}
}

// analyzeFunc runs the may-hold dataflow over fd's CFG and records
// every (held, acquired) pair as a graph edge.
func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl, g *graph) {
	cfg := analysis.NewCFG(fd.Body)
	events := blockEvents(pass, cfg)
	entry := heldByContract(pass, fd)
	if len(entry) == 0 {
		// Cheap exit: no contract locks and no lock calls at all.
		total := 0
		for _, evs := range events {
			total += len(evs)
		}
		if total == 0 {
			return
		}
	}

	// held sets per block boundary; nil means "not yet computed" so the
	// union at a join only includes predecessors that have run.
	in := make([]map[node]token.Pos, len(cfg.Blocks))
	out := make([]map[node]token.Pos, len(cfg.Blocks))
	in[0] = entry
	for changed := true; changed; {
		changed = false
		for i, blk := range cfg.Blocks {
			if i != 0 {
				merged := make(map[node]token.Pos)
				for _, p := range blk.Preds {
					for n, pos := range out[p.Index] {
						if old, ok := merged[n]; !ok || pos < old {
							merged[n] = pos
						}
					}
				}
				in[i] = merged
			}
			o := apply(in[i], events[i], nil)
			if !sameHeld(o, out[i]) {
				out[i] = o
				changed = true
			}
		}
	}
	// Converged: one recording pass per block.
	for i := range cfg.Blocks {
		apply(in[i], events[i], g)
	}
}

// apply runs a block's lock events over the incoming held set,
// returning the outgoing set and (when g is non-nil) recording edges.
func apply(in map[node]token.Pos, events []lockEvent, g *graph) map[node]token.Pos {
	held := make(map[node]token.Pos, len(in))
	for n, pos := range in {
		held[n] = pos
	}
	for _, ev := range events {
		if ev.acquire {
			if g != nil {
				for from := range held {
					g.add(from, ev.n, ev.pos)
				}
			}
			if _, ok := held[ev.n]; !ok {
				held[ev.n] = ev.pos
			}
		} else {
			delete(held, ev.n)
		}
	}
	return held
}

func sameHeld(a, b map[node]token.Pos) bool {
	if b == nil || len(a) != len(b) {
		return false
	}
	for n, pos := range a {
		if bp, ok := b[n]; !ok || bp != pos {
			return false
		}
	}
	return true
}

// blockEvents collects each block's Lock/Unlock calls in source order.
// Deferred calls are dropped: a deferred Unlock runs at exit, so the
// lock stays held for ordering purposes. Function literals are opaque,
// matching the CFG.
func blockEvents(pass *analysis.Pass, cfg *analysis.CFG) [][]lockEvent {
	events := make([][]lockEvent, len(cfg.Blocks))
	for i, blk := range cfg.Blocks {
		for _, stmt := range blk.Nodes {
			if _, ok := stmt.(*ast.DeferStmt); ok {
				continue
			}
			analysis.InspectBlockNode(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					if ev, ok := asLockEvent(pass, n); ok {
						events[i] = append(events[i], ev)
					}
				}
				return true
			})
		}
		sort.SliceStable(events[i], func(a, b int) bool {
			return events[i][a].pos < events[i][b].pos
		})
	}
	return events
}

// asLockEvent recognizes <expr>.<mutexField>.Lock() and friends where
// mutexField is a sync.Mutex or sync.RWMutex field of a named struct.
func asLockEvent(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var acquire, shared bool
	switch fun.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, shared = true, true
	case "Unlock":
	case "RUnlock":
		shared = true
	default:
		return lockEvent{}, false
	}
	t := pass.TypeOf(fun.X)
	if !analysis.IsNamed(t, "sync", "Mutex") && !analysis.IsNamed(t, "sync", "RWMutex") {
		return lockEvent{}, false
	}
	msel, ok := fun.X.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	base := analysis.NamedOf(pass.TypeOf(msel.X))
	if base == nil {
		return lockEvent{}, false
	}
	return lockEvent{
		n:       node{typ: base.Origin().Obj(), field: msel.Sel.Name},
		acquire: acquire,
		shared:  shared,
		pos:     call.Pos(),
	}, true
}

// heldByContract seeds the entry held set from //predmatchvet:holds
// directives, resolving each named mutex against the receiver's type.
func heldByContract(pass *analysis.Pass, fd *ast.FuncDecl) map[node]token.Pos {
	held := make(map[node]token.Pos)
	if fd.Doc == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return held
	}
	recv := analysis.NamedOf(pass.TypeOf(fd.Recv.List[0].Type))
	if recv == nil {
		return held
	}
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return held
	}
	fields := make(map[string]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if analysis.IsNamed(f.Type(), "sync", "Mutex") || analysis.IsNamed(f.Type(), "sync", "RWMutex") {
			fields[f.Name()] = true
		}
	}
	const directive = "predmatchvet:holds"
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, directive) {
			continue
		}
		for _, mu := range strings.Fields(text[len(directive):]) {
			name := strings.TrimSuffix(mu, ",")
			if fields[name] {
				held[node{typ: recv.Origin().Obj(), field: name}] = fd.Pos()
			}
		}
	}
	return held
}

// report runs the documented-order and cycle checks over the finished
// graph.
func (g *graph) report(pass *analysis.Pass) {
	if len(g.edges) == 0 {
		return
	}
	edges := make([]edge, 0, len(g.edges))
	for _, e := range g.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })

	// Documented orders: an edge After → Before inverts one.
	pkg := pass.Pkg.Path()
	for _, e := range edges {
		if e.from.typ != e.to.typ {
			continue
		}
		for _, o := range Orders {
			if o.Pkg == pkg && o.Type == e.from.typ.Name() &&
				e.from.field == o.After && e.to.field == o.Before {
				pass.Reportf(e.pos, "acquires %s while holding %s: the documented order is %s before %s",
					e.to, e.from, o.Before, o.After)
			}
		}
	}

	// Cycles: report each strongly connected component of >= 2 locks
	// once, at its newest edge (the most recently added acquisition is
	// the likely culprit).
	for _, scc := range stronglyConnected(edges) {
		inSCC := make(map[node]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		var culprit edge
		for _, e := range edges {
			if inSCC[e.from] && inSCC[e.to] && e.pos >= culprit.pos {
				culprit = e
			}
		}
		names := make([]string, len(scc))
		for i, n := range scc {
			names[i] = n.String()
		}
		sort.Strings(names)
		pass.Reportf(culprit.pos, "lock-order cycle among %s: acquiring %s while holding %s closes it",
			strings.Join(names, ", "), culprit.to, culprit.from)
	}
}

// stronglyConnected returns every SCC with at least two nodes, via
// Tarjan's algorithm over the edge list.
func stronglyConnected(edges []edge) [][]node {
	succs := make(map[node][]node)
	var nodes []node
	seen := make(map[node]bool)
	addNode := func(n node) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for _, e := range edges {
		addNode(e.from)
		addNode(e.to)
		succs[e.from] = append(succs[e.from], e.to)
	}

	index := make(map[node]int)
	low := make(map[node]int)
	onStack := make(map[node]bool)
	var stack []node
	var sccs [][]node
	next := 0

	var strongconnect func(v node)
	strongconnect = func(v node) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) >= 2 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	return sccs
}
