package analysis

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Main is the entry point of a multichecker binary. It supports three
// invocation shapes:
//
//	predmatchvet [packages]        standalone, like `go build` patterns
//	predmatchvet -V=full           version handshake for cmd/go
//	predmatchvet [flags] foo.cfg   one vet unit, driven by `go vet -vettool`
//
// Exit status: 0 clean, 1 findings, 2 usage or internal error.
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]

	// cmd/go probes the tool's identity and flag surface before using
	// it as a vettool.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
		if a == "-flags" || a == "--flags" {
			// JSON list of tool flags vet may forward; the suite has none.
			fmt.Println("[]")
			return
		}
		if a == "-help" || a == "--help" || a == "-h" {
			usage(os.Stdout, analyzers)
			return
		}
	}

	// A single *.cfg argument means cmd/go is driving one vet unit.
	// Ignore any analyzer flags vet forwards; the suite has none.
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		diags, err := runVetUnit(args[n-1], analyzers)
		exitWith(diags, err)
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "predmatchvet: unknown flag %s\n\n", p)
			usage(os.Stderr, analyzers)
			os.Exit(2)
		}
	}
	diags, err := Run(".", patterns, analyzers)
	exitWith(diags, err)
}

func exitWith(diags []Diagnostic, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatchvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// Run loads the packages matching patterns and applies every analyzer,
// returning the diagnostics sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}

func printVersion() {
	// cmd/go expects `path version <id>` from -V=full and folds the id
	// into its build cache key. The id only needs to change when the
	// tool's behavior does; tie it to the repo's release tag.
	path, err := os.Executable()
	if err != nil {
		path = os.Args[0]
	}
	fmt.Printf("%s version devel predmatchvet-1 buildID=predmatchvet-1\n", path)
}

func usage(w io.Writer, analyzers []*Analyzer) {
	fmt.Fprintf(w, "predmatchvet: machine-checked predmatch invariants\n\n")
	fmt.Fprintf(w, "usage:\n")
	fmt.Fprintf(w, "  predmatchvet [packages]       # standalone, e.g. predmatchvet ./...\n")
	fmt.Fprintf(w, "  go vet -vettool=$(which predmatchvet) ./...\n\n")
	fmt.Fprintf(w, "analyzers:\n")
	for _, a := range analyzers {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "  %-16s %s\n", a.Name, summary)
	}
	fmt.Fprintf(w, "\nsuppress one finding with `//%s <analyzer> <reason>` on the\nflagged line or the line above it.\n", suppressionPrefix)
}
