package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
)

// vetConfig is the JSON configuration cmd/go writes for each vet unit
// (one package or test variant). The field set mirrors the contract
// x/tools' unitchecker documents; unused fields are accepted and
// ignored by virtue of JSON decoding.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit executes the analyzers over one vet unit described by a
// .cfg file, per the `go vet -vettool` protocol: diagnostics go to
// stderr, the (empty — this suite exchanges no facts) .vetx output is
// written so cmd/go can cache the unit, and the exit status reports
// findings.
func runVetUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	if cfg.ImportPath == "" {
		return nil, fmt.Errorf("%s: no ImportPath", cfgFile)
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("%s: unsupported compiler %q", cfgFile, cfg.Compiler)
	}

	var diags []Diagnostic
	if !cfg.VetxOnly {
		diags, err = checkVetUnit(&cfg, analyzers)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
	}

	// The suite defines no cross-package facts, but cmd/go still treats
	// the .vetx file as the unit's cacheable output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	return diags, nil
}

func checkVetUnit(cfg *vetConfig, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	exportFor := exportImporter(fset, cfg.PackageFile)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return exportFor.Import(path)
	})
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	return runAnalyzers(pkg, analyzers)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
