// Package analysistest runs an analyzer over a fixture package tree and
// checks its diagnostics against expectations written in the fixture
// sources, mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone.
//
// Fixtures live under <testdata>/src/<importpath>/, GOPATH style:
// an import of "predmatch/internal/core" inside a fixture resolves to
// <testdata>/src/predmatch/internal/core/, letting a fixture vendor a
// miniature copy of a real package under its real import path. Imports
// with no fixture directory (the standard library) are resolved from gc
// export data via one `go list -export` invocation.
//
// Expectations are comments of the form
//
//	code() // want "regexp"
//	code() // want "first" `second`
//
// Every diagnostic reported on a line must be matched by a distinct
// regexp on that line, and every regexp must match some diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"predmatch/internal/analysis"
)

// Run loads the fixture package pkgpath from testdata/src, applies the
// analyzer, and reports expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	diags, pkg, err := run(testdata, a, pkgpath)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	compare(t, pkg, diags)
}

func run(testdata string, a *analysis.Analyzer, pkgpath string) ([]analysis.Diagnostic, *analysis.Package, error) {
	srcRoot := filepath.Join(testdata, "src")
	ld, err := newLoader(srcRoot, pkgpath)
	if err != nil {
		return nil, nil, err
	}
	pkg, err := ld.load(pkgpath)
	if err != nil {
		return nil, nil, err
	}
	diags, err := analysis.Check(pkg, a)
	return diags, pkg, err
}

// loader resolves fixture packages from source and everything else from
// export data, memoizing so shared fixture imports type-check once.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*analysis.Package
	std     types.Importer
}

func newLoader(srcRoot, rootPkg string) (*loader, error) {
	ld := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*analysis.Package),
	}
	std, err := ld.externalImporter(rootPkg)
	if err != nil {
		return nil, err
	}
	ld.std = std
	return ld, nil
}

// externalImporter pre-scans the fixture import graph for paths with no
// fixture directory and builds an export-data importer covering them.
func (ld *loader) externalImporter(rootPkg string) (types.Importer, error) {
	external := make(map[string]bool)
	seen := make(map[string]bool)
	var scan func(pkgpath string) error
	scan = func(pkgpath string) error {
		if seen[pkgpath] {
			return nil
		}
		seen[pkgpath] = true
		files, err := ld.goFiles(pkgpath)
		if err != nil {
			return err
		}
		for _, file := range files {
			f, err := parser.ParseFile(ld.fset, file, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ld.isFixture(path) {
					if err := scan(path); err != nil {
						return err
					}
				} else {
					external[path] = true
				}
			}
		}
		return nil
	}
	if err := scan(rootPkg); err != nil {
		return nil, err
	}
	if len(external) == 0 {
		return nil, nil
	}
	paths := make([]string, 0, len(external))
	for p := range external {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return analysis.ExportDataImporter(ld.fset, paths)
}

func (ld *loader) isFixture(pkgpath string) bool {
	st, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(pkgpath)))
	return err == nil && st.IsDir()
}

func (ld *loader) goFiles(pkgpath string) ([]string, error) {
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %w", pkgpath, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no Go files", pkgpath)
	}
	sort.Strings(files)
	return files, nil
}

// Import implements types.Importer over the fixture tree.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if ld.isFixture(path) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if ld.std == nil {
		return nil, fmt.Errorf("analysistest: unresolved import %q", path)
	}
	return ld.std.Import(path)
}

func (ld *loader) load(pkgpath string) (*analysis.Package, error) {
	if pkg, ok := ld.pkgs[pkgpath]; ok {
		return pkg, nil
	}
	files, err := ld.goFiles(pkgpath)
	if err != nil {
		return nil, err
	}
	var parsed []*ast.File
	for _, file := range files {
		f, err := parser.ParseFile(ld.fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	pkg, err := analysis.TypeCheck(ld.fset, ld, pkgpath, parsed)
	if err != nil {
		return nil, err
	}
	ld.pkgs[pkgpath] = pkg
	return pkg, nil
}

// expectation is one `// want` regexp with its location.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func compare(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWants(text[len("want "):])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				for _, re := range res {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants parses a sequence of Go-quoted strings ("..." or `...`)
// into compiled regexps.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var quoted string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			quoted = s[:end+1]
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			quoted = s[:end+2]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		raw, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", quoted, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
}
