// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface used by this repository's
// static checkers (cmd/predmatchvet). The repo deliberately has no
// module dependencies, so instead of pulling in x/tools the package
// provides the three pieces the checkers need:
//
//   - the Analyzer / Pass / Diagnostic API (analysis.go);
//   - a package loader built on `go list -export` plus the standard
//     library's gc export-data importer (load.go);
//   - a driver that runs either standalone over package patterns or as
//     a `go vet -vettool` backend speaking cmd/go's vet .cfg protocol
//     (run.go, vet.go).
//
// The sibling package analysistest runs an analyzer over a fixture tree
// and checks its diagnostics against `// want` comments, mirroring
// x/tools' analysistest.
//
// # Suppression
//
// Every diagnostic can be silenced at the reporting site with a comment
// on the flagged line or the line directly above it:
//
//	//predmatchvet:ignore <analyzer> <reason>
//
// where <analyzer> is the analyzer's name or "all". The reason is
// mandatory prose; suppressions without one are themselves reported,
// and so is a suppression that no longer silences any diagnostic of an
// analyzer that ran (stale suppressions cannot rot in place).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments. It must be a valid identifier.
	Name string
	// Doc is the analyzer's help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer run with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	supp   *suppressions
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a suppression comment covers
// that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.supp != nil && p.supp.covers(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// suppressionPrefix starts every inline suppression comment.
const suppressionPrefix = "predmatchvet:ignore"

// suppEntry is one parsed //predmatchvet:ignore directive. used is set
// the first time the directive silences a diagnostic, so directives
// that silence nothing can be reported as stale after a run.
type suppEntry struct {
	analyzer string // named analyzer, or "all"
	pos      token.Position
	used     bool
}

// suppressions indexes //predmatchvet:ignore comments by file and line.
type suppressions struct {
	// byLine maps filename -> line -> directives on that line.
	byLine map[string]map[int][]*suppEntry
}

// covers reports whether a suppression on pos's line or the line above
// names the analyzer (or "all"), marking every matching directive used.
func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	covered := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, e := range lines[line] {
			if e.analyzer == analyzer || e.analyzer == "all" {
				e.used = true
				covered = true
			}
		}
	}
	return covered
}

// stale reports every unused directive whose analyzer was among those
// run — a directive naming an analyzer outside this invocation may
// still be load-bearing (analysistest runs one analyzer at a time), but
// one whose analyzer ran and reported nothing here only hides future
// regressions.
func (s *suppressions) stale(ran map[string]bool, report func(Diagnostic)) {
	for _, lines := range s.byLine {
		for _, entries := range lines {
			for _, e := range entries {
				if e.used || (e.analyzer != "all" && !ran[e.analyzer]) {
					continue
				}
				what := e.analyzer + " diagnostic"
				if e.analyzer == "all" {
					what = "diagnostic"
				}
				report(Diagnostic{
					Pos:      e.pos,
					Analyzer: "predmatchvet",
					Message:  fmt.Sprintf("stale suppression: no %s is reported here (delete the //%s comment)", what, suppressionPrefix),
				})
			}
		}
	}
}

// collectSuppressions scans the files' comments for suppression
// directives. Malformed directives (no analyzer, or no reason) are
// reported as badDirective diagnostics so they cannot silently rot.
func collectSuppressions(fset *token.FileSet, files []*ast.File, badDirective func(Diagnostic)) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*suppEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, suppressionPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, suppressionPrefix))
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					badDirective(Diagnostic{
						Pos:      pos,
						Analyzer: "predmatchvet",
						Message:  fmt.Sprintf("malformed suppression %q: need %q", text, suppressionPrefix+" <analyzer> <reason>"),
					})
					continue
				}
				m := s.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]*suppEntry)
					s.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], &suppEntry{analyzer: fields[0], pos: pos})
			}
		}
	}
	return s
}

// Check applies every analyzer to one loaded package and returns the
// surviving diagnostics sorted by position. It is the hook the
// analysistest fixture runner drives.
func Check(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkg, analyzers)
}

// runAnalyzers applies every analyzer to one loaded package and returns
// the surviving diagnostics sorted by position.
func runAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	supp := collectSuppressions(pkg.Fset, pkg.Files, report)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			report:    report,
			supp:      supp,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	supp.stale(ran, report)
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
