package pst

import (
	"math/rand"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
)

type adapter struct{ *Tree[int64] }

func (adapter) Name() string { return "pst" }

func TestConformance(t *testing.T) {
	ivindex.Run(t, func() ivindex.Index {
		return adapter{New(ivindex.Int64Cmp)}
	}, true)
}

func TestInvariantsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(ivindex.Int64Cmp)
	var live []ID
	next := ID(0)
	for op := 0; op < 600; op++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			iv := ivindex.RandomInterval(rng, 100, true)
			if err := tr.Insert(next, iv); err != nil {
				t.Fatal(err)
			}
			live = append(live, next)
			next++
		} else {
			i := rng.Intn(len(live))
			if err := tr.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if op%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedLowerBounds exercises the (lower bound, id) uniqueness
// transformation the paper discusses: many intervals with identical
// lower bounds must coexist and delete cleanly.
func TestSharedLowerBounds(t *testing.T) {
	tr := New(ivindex.Int64Cmp)
	const n = 50
	for i := int64(0); i < n; i++ {
		if err := tr.Insert(ID(i), interval.Closed(int64(10), 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.Stab(35)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != int(n-25) {
		t.Fatalf("Stab(35) = %d ids, want %d", len(got), n-25)
	}
	for i := int64(0); i < n; i += 2 {
		if err := tr.Delete(ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestHeapOrderDrivesPruning(t *testing.T) {
	// All-disjoint low intervals plus one high outlier: a stab above all
	// of them must visit almost nothing (smoke test via correctness; the
	// complexity claim is benchmarked, not asserted here).
	tr := New(ivindex.Int64Cmp)
	for i := int64(0); i < 100; i++ {
		if err := tr.Insert(ID(i), interval.Closed(i*10, i*10+5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Stab(2000); len(got) != 0 {
		t.Fatalf("Stab(2000) = %v", got)
	}
	if got := tr.Stab(12); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Stab(12) = %v", got)
	}
}
