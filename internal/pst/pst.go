// Package pst implements a dynamic priority search tree (McCreight,
// SIAM J. Computing 1985) specialized to interval stabbing, the paper's
// main comparator for dynamic interval indexing (Section 4.1).
//
// An interval [lo, hi] is the point (lo, hi); "find all intervals
// containing x" is the classic PST query "all points with lo <= x and
// hi >= x". Each tree node carries a routing key (a lower bound) and one
// item placed by the tournament rule: the item with the maximum upper
// bound among those routed through the node sits at the node (a max-heap
// on upper bounds laid over a binary search tree on lower bounds).
//
// The paper observes that priority search trees need lower bounds to be
// unique and that a transformation from non-unique to unique lower
// bounds "is not trivial, and it must be created for each different data
// type to be indexed". Here the transformation is the composite key
// (lower bound, interval id), implemented once for the generic domain.
//
// As with the paper's own IBS-tree prototype, this implementation does
// not rebalance: under random insertion orders the expected depth is
// logarithmic. Deletion uses the standard pull-up: the hole left by a
// removed item is filled by the child item with the larger upper bound,
// cascading down; emptied leaves are excised, so the node count equals
// the live item count.
package pst

import (
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// ID identifies an interval.
type ID = markset.ID

// item is one stored interval.
type item[T any] struct {
	id ID
	iv interval.Interval[T]
}

// key is the unique lower-bound routing key of an item.
type key[T any] struct {
	lo interval.Bound[T]
	id ID
}

type node[T any] struct {
	split       key[T] // routing key; left subtree keys < split, right > split
	it          *item[T]
	left, right *node[T]
}

// Tree is a dynamic priority search tree over domain T.
type Tree[T any] struct {
	cmp  interval.Cmp[T]
	root *node[T]
	ivs  map[ID]interval.Interval[T]
}

// New returns an empty tree ordered by cmp.
func New[T any](cmp interval.Cmp[T]) *Tree[T] {
	return &Tree[T]{cmp: cmp, ivs: make(map[ID]interval.Interval[T])}
}

// Len returns the number of stored intervals.
func (t *Tree[T]) Len() int { return len(t.ivs) }

// cmpLo orders lower bounds (-inf first, closed before open at a value).
func (t *Tree[T]) cmpLo(a, b interval.Bound[T]) int {
	ai, bi := a.Kind == interval.NegInf, b.Kind == interval.NegInf
	switch {
	case ai && bi:
		return 0
	case ai:
		return -1
	case bi:
		return 1
	}
	if c := t.cmp(a.Value, b.Value); c != 0 {
		return c
	}
	switch {
	case a.Closed == b.Closed:
		return 0
	case a.Closed:
		return -1
	default:
		return 1
	}
}

// cmpHi orders upper bounds (+inf last, closed after open at a value).
func (t *Tree[T]) cmpHi(a, b interval.Bound[T]) int {
	ai, bi := a.Kind == interval.PosInf, b.Kind == interval.PosInf
	switch {
	case ai && bi:
		return 0
	case ai:
		return 1
	case bi:
		return -1
	}
	if c := t.cmp(a.Value, b.Value); c != 0 {
		return c
	}
	switch {
	case a.Closed == b.Closed:
		return 0
	case a.Closed:
		return 1
	default:
		return -1
	}
}

// cmpKey orders composite routing keys.
func (t *Tree[T]) cmpKey(a, b key[T]) int {
	if c := t.cmpLo(a.lo, b.lo); c != 0 {
		return c
	}
	switch {
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	default:
		return 0
	}
}

// Insert adds iv under id.
func (t *Tree[T]) Insert(id ID, iv interval.Interval[T]) error {
	if err := iv.Validate(t.cmp); err != nil {
		return err
	}
	if _, dup := t.ivs[id]; dup {
		return fmt.Errorf("pst: duplicate interval id %d", id)
	}
	t.ivs[id] = iv
	it := &item[T]{id: id, iv: iv}
	n := &t.root
	for *n != nil {
		cur := *n
		// Tournament: the item with the larger upper bound stays up; the
		// displaced one keeps sinking, routed by its own key.
		if cur.it == nil || t.cmpHi(it.iv.Hi, cur.it.iv.Hi) > 0 {
			it, cur.it = cur.it, it
		}
		if it == nil {
			// The displaced slot was empty (only possible transiently
			// during deletion; nodes are excised when emptied) — done.
			return nil
		}
		if t.cmpKey(key[T]{it.iv.Lo, it.id}, cur.split) < 0 {
			n = &cur.left
		} else {
			n = &cur.right
		}
	}
	*n = &node[T]{split: key[T]{it.iv.Lo, it.id}, it: it}
	return nil
}

// Delete removes the interval stored under id.
func (t *Tree[T]) Delete(id ID) error {
	iv, ok := t.ivs[id]
	if !ok {
		return fmt.Errorf("pst: unknown interval id %d", id)
	}
	delete(t.ivs, id)
	k := key[T]{iv.Lo, id}
	// The item lies on the routing path of its own key.
	n := &t.root
	for *n != nil {
		cur := *n
		if cur.it != nil && cur.it.id == id {
			t.pullUp(n)
			return nil
		}
		if t.cmpKey(k, cur.split) < 0 {
			n = &cur.left
		} else {
			n = &cur.right
		}
	}
	// Unreachable if invariants hold.
	return fmt.Errorf("pst: interval id %d registered but not found in tree", id)
}

// pullUp fills the emptied item slot at *n by promoting the child item
// with the larger upper bound, cascading downward; a node left with no
// item and no children is excised.
func (t *Tree[T]) pullUp(n **node[T]) {
	cur := *n
	for {
		l, r := cur.left, cur.right
		var from **node[T]
		switch {
		case l == nil && r == nil:
			// Leaf: excise.
			*n = nil
			return
		case l == nil:
			from = &cur.right
		case r == nil:
			from = &cur.left
		case t.cmpHi(l.it.iv.Hi, r.it.iv.Hi) >= 0:
			from = &cur.left
		default:
			from = &cur.right
		}
		cur.it = (*from).it
		n = from
		cur = *n
	}
}

// Stab returns the ids of all intervals containing x.
func (t *Tree[T]) Stab(x T) []ID { return t.StabAppend(x, nil) }

// StabAppend appends the ids of all intervals containing x to dst:
// descend while the heap order admits upper bounds >= x, and skip right
// subtrees whose routing keys already exceed x.
func (t *Tree[T]) StabAppend(x T, dst []ID) []ID {
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		// Heap prune: the node item has the max upper bound below here.
		if !hiReaches(t.cmp, n.it.iv.Hi, x) {
			return
		}
		if n.it.iv.Contains(t.cmp, x) {
			dst = append(dst, n.it.id)
		}
		walk(n.left)
		// Keys in the right subtree are >= split; if the split's lower
		// bound already exceeds x, nothing there can contain x.
		if loAbove(t.cmp, n.split.lo, x) {
			return
		}
		walk(n.right)
	}
	walk(t.root)
	return dst
}

// hiReaches reports x <= hi (honoring closedness).
func hiReaches[T any](cmp interval.Cmp[T], hi interval.Bound[T], x T) bool {
	if hi.Kind == interval.PosInf {
		return true
	}
	c := cmp(x, hi.Value)
	if c == 0 {
		return hi.Closed
	}
	return c < 0
}

// loAbove reports lo > x (honoring closedness).
func loAbove[T any](cmp interval.Cmp[T], lo interval.Bound[T], x T) bool {
	if lo.Kind == interval.NegInf {
		return false
	}
	c := cmp(lo.Value, x)
	if c == 0 {
		return !lo.Closed
	}
	return c > 0
}

// CheckInvariants verifies the PST invariants, exported for tests:
// every node holds an item; the heap order on upper bounds holds between
// parent and children; every item's key routes to the node it occupies;
// node count equals item count.
func (t *Tree[T]) CheckInvariants() error {
	count := 0
	var walk func(n *node[T], mins, maxs []key[T]) error
	walk = func(n *node[T], lo, hi []key[T]) error {
		if n == nil {
			return nil
		}
		if n.it == nil {
			return fmt.Errorf("pst: node with empty item slot")
		}
		count++
		k := key[T]{n.it.iv.Lo, n.it.id}
		for _, b := range lo {
			if t.cmpKey(k, b) < 0 {
				return fmt.Errorf("pst: item %d routed outside its key range", n.it.id)
			}
		}
		for _, b := range hi {
			if t.cmpKey(k, b) >= 0 {
				return fmt.Errorf("pst: item %d routed outside its key range", n.it.id)
			}
		}
		if n.left != nil && t.cmpHi(n.left.it.iv.Hi, n.it.iv.Hi) > 0 {
			return fmt.Errorf("pst: heap order violated at item %d", n.it.id)
		}
		if n.right != nil && t.cmpHi(n.right.it.iv.Hi, n.it.iv.Hi) > 0 {
			return fmt.Errorf("pst: heap order violated at item %d", n.it.id)
		}
		if err := walk(n.left, lo, append(hi, n.split)); err != nil {
			return err
		}
		return walk(n.right, append(lo, n.split), hi)
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if count != len(t.ivs) {
		return fmt.Errorf("pst: %d nodes but %d registered intervals", count, len(t.ivs))
	}
	return nil
}
