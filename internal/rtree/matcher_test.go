package rtree_test

import (
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/pred"
	"predmatch/internal/rtree"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func TestPredMatcherConformance(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return rtree.NewPredMatcher(f.Catalog, f.Funcs)
	})
}

// TestPredMatcherConcurrentConformance drives the read/write storm
// harness under the Synchronized wrapper (the R-tree matcher is
// single-threaded).
func TestPredMatcherConcurrentConformance(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		return matchertest.Synchronized(rtree.NewPredMatcher(f.Catalog, f.Funcs))
	})
}

func TestPredMatcherOpenBoundsExact(t *testing.T) {
	f := matchertest.NewFixture()
	m := rtree.NewPredMatcher(f.Catalog, f.Funcs)
	// age > 50: widened to [50, clamp] in the region, but the completion
	// test must reject age == 50 exactly.
	if err := m.Add(pred.New(1, "emp", pred.IvClause("age", interval.Greater(value.Int(50))))); err != nil {
		t.Fatal(err)
	}
	at := func(age int64) []pred.ID {
		tp := tuple.New(value.String_("x"), value.Int(age), value.Int(0), value.String_("d"))
		got, err := m.Match("emp", tp, nil)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := at(50); len(got) != 0 {
		t.Fatalf("age=50 matched %v", got)
	}
	if got := at(51); !reflect.DeepEqual(got, []pred.ID{1}) {
		t.Fatalf("age=51 matched %v", got)
	}
}

func TestPredMatcherStringOnlyPredicates(t *testing.T) {
	f := matchertest.NewFixture()
	m := rtree.NewPredMatcher(f.Catalog, f.Funcs)
	// A predicate on only string attributes has no geometric embedding.
	if err := m.Add(pred.New(1, "emp", pred.EqClause("dept", value.String_("shoe")))); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(pred.New(2, "emp",
		pred.EqClause("dept", value.String_("shoe")),
		pred.IvClause("salary", interval.AtLeast(value.Int(10))))); err != nil {
		t.Fatal(err)
	}
	tp := tuple.New(value.String_("x"), value.Int(30), value.Int(20), value.String_("shoe"))
	got, err := m.Match("emp", tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []pred.ID{1, 2}) {
		t.Fatalf("Match = %v", got)
	}
	// Removal from both the tree and the side list.
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(2); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestPredMatcherContradictoryNumericClauses(t *testing.T) {
	f := matchertest.NewFixture()
	m := rtree.NewPredMatcher(f.Catalog, f.Funcs)
	// age >= 60 and age <= 40: numerically empty region.
	if err := m.Add(pred.New(1, "emp",
		pred.IvClause("age", interval.AtLeast(value.Int(60))),
		pred.IvClause("age", interval.AtMost(value.Int(40))))); err != nil {
		t.Fatal(err)
	}
	tp := tuple.New(value.String_("x"), value.Int(50), value.Int(0), value.String_("d"))
	got, err := m.Match("emp", tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("contradictory predicate matched %v", got)
	}
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
}

func TestPredMatcherName(t *testing.T) {
	f := matchertest.NewFixture()
	if rtree.NewPredMatcher(f.Catalog, f.Funcs).Name() != "rtree" {
		t.Fatal("Name wrong")
	}
}

// TestPredMatcherBoolAndStringBounds covers the non-numeric bound
// widening path in region construction.
func TestPredMatcherBoolBounds(t *testing.T) {
	f := matchertest.NewFixture()
	m := rtree.NewPredMatcher(f.Catalog, f.Funcs)
	// events(kind string, severity int, open bool): restrict the bool
	// attribute; bools are numeric coordinates 0/1.
	if err := m.Add(pred.New(1, "events", pred.EqClause("open", value.Bool(true)))); err != nil {
		t.Fatal(err)
	}
	tp := tuple.New(value.String_("alert"), value.Int(1), value.Bool(true))
	got, err := m.Match("events", tp, nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("Match = %v, %v", got, err)
	}
	tp2 := tuple.New(value.String_("alert"), value.Int(1), value.Bool(false))
	got, _ = m.Match("events", tp2, nil)
	if len(got) != 0 {
		t.Fatalf("Match(false) = %v", got)
	}
}
