package rtree

import (
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// Interval1D adapts a one-dimensional R-tree to the dynamic interval
// index interface, for the paper's Section 6 comparison ("implement
// several different techniques for dynamically indexing intervals,
// including 1-dimensional R-trees, IBS-trees, and priority search
// trees"). The paper notes two handicaps this adapter makes concrete:
// R-trees cannot represent open intervals (unbounded ends are clamped to
// ±Clamp, and open integer bounds are narrowed to the adjacent closed
// integer), and heavily overlapping intervals degrade search.
type Interval1D struct {
	tree *Tree
}

// Clamp is the coordinate substituted for an unbounded interval end.
const Clamp = float64(1 << 50)

// NewInterval1D returns an empty 1-D R-tree interval index.
func NewInterval1D(opts ...Option) *Interval1D {
	return &Interval1D{tree: New(1, opts...)}
}

// Name implements the interval-index naming convention.
func (ix *Interval1D) Name() string { return "rtree-1d" }

// Len returns the number of stored intervals.
func (ix *Interval1D) Len() int { return ix.tree.Len() }

// rectOf converts an integer interval to a closed 1-D rectangle. Open
// bounds narrow by one half: integer stab points never land on .5
// coordinates, so (a, b) maps exactly to [a+0.5, b-0.5] — including the
// integer-empty case (a, a+1), which becomes the point rectangle
// [a+0.5, a+0.5] that no integer query can hit.
func rectOf(iv interval.Interval[int64]) (Rect, error) {
	lo, hi := -Clamp, Clamp
	switch iv.Lo.Kind {
	case interval.Finite:
		lo = float64(iv.Lo.Value)
		if !iv.Lo.Closed {
			lo += 0.5
		}
	case interval.PosInf:
		return Rect{}, fmt.Errorf("rtree: +inf lower bound")
	}
	switch iv.Hi.Kind {
	case interval.Finite:
		hi = float64(iv.Hi.Value)
		if !iv.Hi.Closed {
			hi -= 0.5
		}
	case interval.NegInf:
		return Rect{}, fmt.Errorf("rtree: -inf upper bound")
	}
	if lo > hi {
		return Rect{}, fmt.Errorf("rtree: empty interval %v", iv)
	}
	return Rect{Min: []float64{lo}, Max: []float64{hi}}, nil
}

// Insert adds iv under id.
func (ix *Interval1D) Insert(id markset.ID, iv interval.Interval[int64]) error {
	cmp := func(a, b int64) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if err := iv.Validate(cmp); err != nil {
		return err
	}
	r, err := rectOf(iv)
	if err != nil {
		return err
	}
	return ix.tree.Insert(id, r)
}

// Delete removes the interval stored under id.
func (ix *Interval1D) Delete(id markset.ID) error {
	return ix.tree.Delete(id)
}

// StabAppend appends the ids of all intervals containing x to dst.
func (ix *Interval1D) StabAppend(x int64, dst []markset.ID) []markset.ID {
	return ix.tree.SearchPoint([]float64{float64(x)}, dst)
}
