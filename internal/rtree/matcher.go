package rtree

import (
	"fmt"
	"math"

	"predmatch/internal/interval"
	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// PredMatcher is the paper's Section 2.4 baseline as a full matching
// strategy: predicates on a relation are regions in the k-dimensional
// space of the relation's numeric attributes, stored in one R-tree per
// relation; each tuple is a point used to find all overlapping regions.
//
// Faithful handicaps: string-typed attributes have no geometric
// embedding, so clauses on them do not narrow the region (they are
// verified in the completion test, like the paper's final PREDICATES
// check); unbounded and open bounds widen to enclosing closed bounds
// (sound — the region is a superset of the predicate — but a source of
// false partial matches); and predicates restricting one attribute out
// of many become the overlapping "slices" the paper identifies as the
// R-tree's worst case.
type PredMatcher struct {
	catalog *schema.Catalog
	funcs   *pred.Registry
	rels    map[string]*relRT
	preds   map[pred.ID]*rtEntry
	scratch []pred.ID
}

type rtEntry struct {
	bound *pred.Bound
	// geometric reports whether the predicate lives in the R-tree (true)
	// or on the side list (no numeric clause at all).
	geometric bool
}

type relRT struct {
	// numericPos maps R-tree dimension -> attribute position.
	numericPos []int
	// dimOf maps attribute position -> R-tree dimension (-1 for
	// non-numeric attributes).
	dimOf []int
	tree  *Tree
	side  []*rtEntry
	point []float64 // scratch query point
}

var _ matcher.Matcher = (*PredMatcher)(nil)

// NewPredMatcher returns an empty R-tree predicate matcher.
func NewPredMatcher(catalog *schema.Catalog, funcs *pred.Registry, opts ...Option) *PredMatcher {
	return &PredMatcher{
		catalog: catalog,
		funcs:   funcs,
		rels:    make(map[string]*relRT),
		preds:   make(map[pred.ID]*rtEntry),
	}
}

// Name implements matcher.Matcher.
func (m *PredMatcher) Name() string { return "rtree" }

// Len implements matcher.Matcher.
func (m *PredMatcher) Len() int { return len(m.preds) }

func (m *PredMatcher) relFor(name string) *relRT {
	rt, ok := m.rels[name]
	if !ok {
		rel, _ := m.catalog.Get(name)
		rt = &relRT{dimOf: make([]int, rel.Arity())}
		for i, a := range rel.Attrs() {
			rt.dimOf[i] = -1
			switch a.Type {
			case value.KindInt, value.KindFloat, value.KindBool:
				rt.dimOf[i] = len(rt.numericPos)
				rt.numericPos = append(rt.numericPos, i)
			}
		}
		if len(rt.numericPos) > 0 {
			rt.tree = New(len(rt.numericPos))
			rt.point = make([]float64, len(rt.numericPos))
		}
		m.rels[name] = rt
	}
	return rt
}

// boundCoord converts an interval bound to a closed float coordinate,
// widening open bounds outward (soundness over precision).
func boundCoord(b interval.Bound[value.Value], upper bool) float64 {
	switch b.Kind {
	case interval.NegInf:
		return -Clamp
	case interval.PosInf:
		return Clamp
	}
	f, ok := b.Value.Numeric()
	if !ok {
		if upper {
			return Clamp
		}
		return -Clamp
	}
	return f
}

// Add implements matcher.Matcher.
func (m *PredMatcher) Add(p *pred.Predicate) error {
	if _, dup := m.preds[p.ID]; dup {
		return fmt.Errorf("rtree: duplicate predicate id %d", p.ID)
	}
	b, err := p.Bind(m.catalog, m.funcs)
	if err != nil {
		return err
	}
	rel, _ := m.catalog.Get(p.Rel)
	rt := m.relFor(p.Rel)
	e := &rtEntry{bound: b}

	if rt.tree != nil {
		min := make([]float64, len(rt.numericPos))
		max := make([]float64, len(rt.numericPos))
		for d := range min {
			min[d], max[d] = -Clamp, Clamp
		}
		narrowed := false
		for _, c := range p.Clauses {
			if c.Kind != pred.KindInterval {
				continue
			}
			pos, _ := rel.AttrIndex(c.Attr)
			d := rt.dimOf[pos]
			if d < 0 {
				continue // non-numeric attribute: no geometric narrowing
			}
			lo := boundCoord(c.Iv.Lo, false)
			hi := boundCoord(c.Iv.Hi, true)
			min[d] = math.Max(min[d], lo)
			max[d] = math.Min(max[d], hi)
			narrowed = true
		}
		if narrowed {
			if ok := rectNonEmpty(min, max); !ok {
				// Conflicting numeric clauses: predicate can never match
				// numerically; keep it on the side list so removal and
				// counting stay uniform (it will be fully tested there).
				rt.side = append(rt.side, e)
			} else {
				if err := rt.tree.Insert(p.ID, Rect{Min: min, Max: max}); err != nil {
					return err
				}
				e.geometric = true
			}
		} else {
			rt.side = append(rt.side, e)
		}
	} else {
		rt.side = append(rt.side, e)
	}
	m.preds[p.ID] = e
	return nil
}

func rectNonEmpty(min, max []float64) bool {
	for i := range min {
		if min[i] > max[i] {
			return false
		}
	}
	return true
}

// Remove implements matcher.Matcher.
func (m *PredMatcher) Remove(id pred.ID) error {
	e, ok := m.preds[id]
	if !ok {
		return fmt.Errorf("rtree: unknown predicate id %d", id)
	}
	delete(m.preds, id)
	rt := m.rels[e.bound.Pred.Rel]
	if e.geometric {
		return rt.tree.Delete(id)
	}
	for i, x := range rt.side {
		if x == e {
			rt.side = append(rt.side[:i], rt.side[i+1:]...)
			break
		}
	}
	return nil
}

// Match implements matcher.Matcher: point-search the relation's R-tree,
// complete candidates with the full predicate test, and test the side
// list sequentially.
func (m *PredMatcher) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	rt, ok := m.rels[rel]
	if !ok {
		return dst, nil
	}
	if rt.tree != nil {
		for d, pos := range rt.numericPos {
			f, _ := t[pos].Numeric()
			rt.point[d] = f
		}
		scratch := rt.tree.SearchPoint(rt.point, m.scratch[:0])
		for _, id := range scratch {
			e := m.preds[id]
			if e.bound.Match(t) {
				dst = append(dst, id)
			}
		}
		m.scratch = scratch
	}
	for _, e := range rt.side {
		if e.bound.Match(t) {
			dst = append(dst, e.bound.Pred.ID)
		}
	}
	return dst, nil
}
