// Package rtree implements an in-memory R-tree (Guttman, SIGMOD 1984)
// with the quadratic split heuristic — the multi-dimensional predicate
// indexing baseline of the paper's Section 2.4. Predicates are treated
// as (hyper-)rectangles in the k-dimensional space of a relation's
// numeric attributes; each new or modified tuple is a point used to
// search the index for all overlapping regions.
//
// The paper's critique — which the benchmark suite reproduces — is that
// typical selection predicates restrict only one or two of many
// attributes, producing long overlapping "slices" through space that
// R-trees index poorly, and that "R-trees cannot accommodate open
// intervals" (unbounded sides here clamp to a large finite coordinate).
package rtree

import (
	"fmt"
	"math"

	"predmatch/internal/markset"
)

// ID identifies an indexed region.
type ID = markset.ID

// Rect is an axis-aligned rectangle: Min[i] <= Max[i] for every axis.
type Rect struct {
	Min, Max []float64
}

// NewRect builds a rectangle, validating dimensions.
func NewRect(min, max []float64) (Rect, error) {
	if len(min) != len(max) || len(min) == 0 {
		return Rect{}, fmt.Errorf("rtree: rect needs matching non-empty min/max, got %d/%d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("rtree: min[%d] %v > max[%d] %v", i, min[i], i, max[i])
		}
	}
	return Rect{Min: min, Max: max}, nil
}

// PointRect is the degenerate rectangle at a point.
func PointRect(coords []float64) Rect {
	return Rect{Min: coords, Max: coords}
}

// contains reports whether the rectangle contains the point p.
func (r Rect) contains(p []float64) bool {
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// area returns the rectangle's volume.
func (r Rect) area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// enlarge returns the bounding rectangle of r and s.
func (r Rect) enlarge(s Rect) Rect {
	min := make([]float64, len(r.Min))
	max := make([]float64, len(r.Max))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], s.Min[i])
		max[i] = math.Max(r.Max[i], s.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// enlargement returns the area growth of r needed to cover s.
func (r Rect) enlargement(s Rect) float64 {
	return r.enlarge(s).area() - r.area()
}

// Tree is an R-tree mapping IDs to rectangles. Not safe for concurrent
// mutation.
type Tree struct {
	dims     int
	maxEntry int
	minEntry int
	root     *node
	regions  map[ID]Rect
}

type entry struct {
	rect  Rect
	child *node // nil in leaves
	id    ID    // meaningful in leaves
}

type node struct {
	leaf    bool
	entries []entry
}

// Option configures a Tree.
type Option func(*Tree)

// MaxEntries sets the node fan-out (default 8, minimum 4); the minimum
// fill is half of it.
func MaxEntries(m int) Option {
	return func(t *Tree) {
		if m >= 4 {
			t.maxEntry = m
			t.minEntry = m / 2
		}
	}
}

// New returns an empty R-tree over dims dimensions.
func New(dims int, opts ...Option) *Tree {
	t := &Tree{
		dims:     dims,
		maxEntry: 8,
		minEntry: 4,
		root:     &node{leaf: true},
		regions:  make(map[ID]Rect),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Len returns the number of stored regions.
func (t *Tree) Len() int { return len(t.regions) }

// Dims returns the dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Insert adds rect under id.
func (t *Tree) Insert(id ID, rect Rect) error {
	if len(rect.Min) != t.dims || len(rect.Max) != t.dims {
		return fmt.Errorf("rtree: rect has %d dims, tree has %d", len(rect.Min), t.dims)
	}
	for i := range rect.Min {
		if rect.Min[i] > rect.Max[i] {
			return fmt.Errorf("rtree: inverted rect on axis %d", i)
		}
	}
	if _, dup := t.regions[id]; dup {
		return fmt.Errorf("rtree: duplicate region id %d", id)
	}
	t.regions[id] = rect
	split := t.insert(t.root, entry{rect: rect, id: id})
	if split != nil {
		old := t.root
		t.root = &node{
			leaf: false,
			entries: []entry{
				{rect: boundOf(old), child: old},
				{rect: boundOf(split), child: split},
			},
		}
	}
	return nil
}

// boundOf computes a node's bounding rectangle.
func boundOf(n *node) Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.enlarge(e.rect)
	}
	return r
}

// insert places e in the subtree at n, returning a new sibling if n split.
func (t *Tree) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntry {
			return t.splitNode(n)
		}
		return nil
	}
	// ChooseLeaf: least enlargement, ties by smallest area.
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, c := range n.entries {
		enl := c.rect.enlargement(e.rect)
		area := c.rect.area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := n.entries[best].child
	split := t.insert(child, e)
	n.entries[best].rect = boundOf(child)
	if split != nil {
		n.entries = append(n.entries, entry{rect: boundOf(split), child: split})
		if len(n.entries) > t.maxEntry {
			return t.splitNode(n)
		}
	}
	return nil
}

// splitNode applies Guttman's quadratic split, mutating n into one group
// and returning the other.
func (t *Tree) splitNode(n *node) *node {
	entries := n.entries

	// PickSeeds: the pair wasting the most area together.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.enlarge(entries[j].rect).area() -
				entries[i].rect.area() - entries[j].rect.area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := []entry{entries[s1]}
	g2 := []entry{entries[s2]}
	r1, r2 := entries[s1].rect, entries[s2].rect
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}

	// PickNext: assign the entry with maximum preference difference.
	for len(rest) > 0 {
		// Force-assign when one group must take all remaining entries to
		// reach minimum fill.
		if len(g1)+len(rest) == t.minEntry {
			g1 = append(g1, rest...)
			for _, e := range rest {
				r1 = r1.enlarge(e.rect)
			}
			break
		}
		if len(g2)+len(rest) == t.minEntry {
			g2 = append(g2, rest...)
			for _, e := range rest {
				r2 = r2.enlarge(e.rect)
			}
			break
		}
		bi, bd := 0, -1.0
		var bd1, bd2 float64
		for i, e := range rest {
			d1 := r1.enlargement(e.rect)
			d2 := r2.enlargement(e.rect)
			if d := math.Abs(d1 - d2); d > bd {
				bi, bd, bd1, bd2 = i, d, d1, d2
			}
		}
		e := rest[bi]
		rest = append(rest[:bi], rest[bi+1:]...)
		if bd1 < bd2 || (bd1 == bd2 && r1.area() <= r2.area()) {
			g1 = append(g1, e)
			r1 = r1.enlarge(e.rect)
		} else {
			g2 = append(g2, e)
			r2 = r2.enlarge(e.rect)
		}
	}

	n.entries = g1
	return &node{leaf: n.leaf, entries: g2}
}

// Delete removes the region stored under id, condensing the tree.
func (t *Tree) Delete(id ID) error {
	rect, ok := t.regions[id]
	if !ok {
		return fmt.Errorf("rtree: unknown region id %d", id)
	}
	delete(t.regions, id)
	var orphans []entry
	if !t.remove(t.root, id, rect, &orphans) {
		return fmt.Errorf("rtree: region id %d registered but not found", id)
	}
	// Shrink a non-leaf root with a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	// Reinsert orphaned leaf entries.
	for _, e := range orphans {
		if split := t.insert(t.root, e); split != nil {
			old := t.root
			t.root = &node{
				leaf: false,
				entries: []entry{
					{rect: boundOf(old), child: old},
					{rect: boundOf(split), child: split},
				},
			}
		}
	}
	return nil
}

// remove deletes the (id, rect) leaf entry below n. Underfull nodes are
// dissolved: their remaining leaf entries are collected for reinsertion.
func (t *Tree) remove(n *node, id ID, rect Rect, orphans *[]entry) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.id == id {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i, e := range n.entries {
		if !overlaps(e.rect, rect) {
			continue
		}
		if !t.remove(e.child, id, rect, orphans) {
			continue
		}
		child := e.child
		if len(child.entries) < t.minEntry {
			// Condense: dissolve the child, reinserting its entries.
			collectLeafEntries(child, orphans)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i].rect = boundOf(child)
		}
		return true
	}
	return false
}

// collectLeafEntries gathers every leaf entry beneath n.
func collectLeafEntries(n *node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, e := range n.entries {
		collectLeafEntries(e.child, out)
	}
}

// overlaps reports whether two rectangles intersect.
func overlaps(a, b Rect) bool {
	for i := range a.Min {
		if a.Max[i] < b.Min[i] || b.Max[i] < a.Min[i] {
			return false
		}
	}
	return true
}

// SearchPoint appends the ids of all regions containing the point to dst.
func (t *Tree) SearchPoint(p []float64, dst []ID) []ID {
	if len(p) != t.dims {
		return dst
	}
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if !e.rect.contains(p) {
				continue
			}
			if n.leaf {
				dst = append(dst, e.id)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return dst
}

// CheckInvariants verifies bounding-rectangle containment, occupancy
// bounds and uniform leaf depth; exported for tests.
func (t *Tree) CheckInvariants() error {
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n != t.root && (len(n.entries) < t.minEntry || len(n.entries) > t.maxEntry) {
			return fmt.Errorf("rtree: node with %d entries outside [%d,%d]", len(n.entries), t.minEntry, t.maxEntry)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			count += len(n.entries)
			return nil
		}
		for _, e := range n.entries {
			bound := boundOf(e.child)
			for i := range bound.Min {
				if e.rect.Min[i] > bound.Min[i] || e.rect.Max[i] < bound.Max[i] {
					return fmt.Errorf("rtree: entry rect does not cover child bound")
				}
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != len(t.regions) {
		return fmt.Errorf("rtree: %d leaf entries but %d regions registered", count, len(t.regions))
	}
	return nil
}
