package rtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
)

func TestInterval1DConformance(t *testing.T) {
	ivindex.Run(t, func() ivindex.Index {
		return NewInterval1D()
	}, true)
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect([]float64{0, 0}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRect([]float64{0}, []float64{1, 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := NewRect(nil, nil); err == nil {
		t.Error("empty rect accepted")
	}
	if _, err := NewRect([]float64{2}, []float64{1}); err == nil {
		t.Error("inverted rect accepted")
	}
}

func TestInsertErrors(t *testing.T) {
	tr := New(2)
	r, _ := NewRect([]float64{0, 0}, []float64{1, 1})
	if err := tr.Insert(1, r); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, r); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := tr.Insert(2, PointRect([]float64{0})); err == nil {
		t.Error("dim mismatch accepted")
	}
	if err := tr.Insert(3, Rect{Min: []float64{1, 1}, Max: []float64{0, 0}}); err == nil {
		t.Error("inverted rect accepted")
	}
	if err := tr.Delete(99); err == nil {
		t.Error("unknown delete accepted")
	}
}

// TestKDimRandomized cross-checks point search against brute force in 2
// and 3 dimensions under churn, verifying invariants as it goes.
func TestKDimRandomized(t *testing.T) {
	for _, dims := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(dims)))
		tr := New(dims)
		ref := map[markset.ID]Rect{}
		next := markset.ID(0)
		var live []markset.ID

		randRect := func() Rect {
			min := make([]float64, dims)
			max := make([]float64, dims)
			for d := 0; d < dims; d++ {
				a, b := float64(rng.Intn(100)), float64(rng.Intn(100))
				if a > b {
					a, b = b, a
				}
				min[d], max[d] = a, b
			}
			return Rect{Min: min, Max: max}
		}
		randPoint := func() []float64 {
			p := make([]float64, dims)
			for d := range p {
				p[d] = float64(rng.Intn(110) - 5)
			}
			return p
		}

		for op := 0; op < 500; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				r := randRect()
				if err := tr.Insert(next, r); err != nil {
					t.Fatalf("dims %d op %d: %v", dims, op, err)
				}
				ref[next] = r
				live = append(live, next)
				next++
			} else {
				i := rng.Intn(len(live))
				if err := tr.Delete(live[i]); err != nil {
					t.Fatalf("dims %d op %d: %v", dims, op, err)
				}
				delete(ref, live[i])
				live = append(live[:i], live[i+1:]...)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("dims %d op %d: Len %d want %d", dims, op, tr.Len(), len(ref))
			}
			for q := 0; q < 3; q++ {
				p := randPoint()
				got := tr.SearchPoint(p, nil)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				var want []markset.ID
				for id, r := range ref {
					if r.contains(p) {
						want = append(want, id)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("dims %d op %d: SearchPoint(%v) = %v, want %v", dims, op, p, got, want)
				}
			}
			if op%50 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("dims %d op %d: %v", dims, op, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("dims %d final: %v", dims, err)
		}
	}
}

// TestSlicePredicates builds the workload the paper says R-trees handle
// poorly — low-dimension predicates as slices through a 5-D space — and
// checks correctness still holds (performance is a bench concern).
func TestSlicePredicates(t *testing.T) {
	const dims = 5
	tr := New(dims)
	// Each predicate restricts one attribute only: a slab.
	for i := 0; i < 50; i++ {
		min := make([]float64, dims)
		max := make([]float64, dims)
		for d := 0; d < dims; d++ {
			min[d], max[d] = -Clamp, Clamp
		}
		d := i % dims
		min[d], max[d] = float64(i), float64(i+10)
		if err := tr.Insert(markset.ID(i), Rect{Min: min, Max: max}); err != nil {
			t.Fatal(err)
		}
	}
	p := []float64{5, 6, 7, 8, 9}
	got := tr.SearchPoint(p, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	// Expected: predicates i with i <= p[i%5] <= i+10 and i%5 == d.
	var want []markset.ID
	for i := 0; i < 50; i++ {
		d := i % dims
		if p[d] >= float64(i) && p[d] <= float64(i+10) {
			want = append(want, markset.ID(i))
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SearchPoint = %v, want %v", got, want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxEntriesOption(t *testing.T) {
	tr := New(2, MaxEntries(16))
	if tr.maxEntry != 16 || tr.minEntry != 8 {
		t.Fatalf("MaxEntries not applied: %d/%d", tr.maxEntry, tr.minEntry)
	}
	// Too-small values are ignored.
	tr2 := New(2, MaxEntries(2))
	if tr2.maxEntry != 8 {
		t.Fatalf("invalid MaxEntries should keep default, got %d", tr2.maxEntry)
	}
}

func TestNamesAndDims(t *testing.T) {
	if NewInterval1D().Name() != "rtree-1d" {
		t.Fatal("Interval1D name wrong")
	}
	if New(3).Dims() != 3 {
		t.Fatal("Dims wrong")
	}
}
