// Package matcher defines the interface every predicate-matching
// strategy implements, so the strategies of the paper's Section 2
// (sequential search, hash + sequential, physical locking,
// multi-dimensional indexing) and Section 4 (the IBS-tree scheme) can be
// driven and benchmarked interchangeably.
package matcher

import (
	"predmatch/internal/pred"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
)

// Matcher answers the paper's predicate testing problem: given a tuple t
// of relation R, return exactly the predicates that match t.
type Matcher interface {
	// Name identifies the strategy in benchmark output.
	Name() string

	// Add registers a disjunction-free predicate. The predicate ID must
	// be unique across the matcher.
	Add(p *pred.Predicate) error

	// Remove unregisters a predicate by ID.
	Remove(id pred.ID) error

	// Match returns the IDs of all predicates matching the tuple,
	// appended to dst (which may be nil). Order is unspecified; each
	// matching ID appears exactly once.
	Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error)

	// Len returns the number of registered predicates.
	Len() int
}

// TracedMatcher is the optional extension a strategy implements to
// explain one probe inside a request trace: MatchTraced behaves exactly
// like Match but attaches child spans (snapshot load, prefilter
// verdict, stab) to sp. Callers type-assert once and fall back to
// Match; passing a nil span must be equivalent to Match.
type TracedMatcher interface {
	Matcher
	MatchTraced(rel string, t tuple.Tuple, dst []pred.ID, sp *trace.Span) ([]pred.ID, error)
}
