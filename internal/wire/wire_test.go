package wire_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/matchertest"
	"predmatch/internal/pred"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wire"
)

// decode round-trips v through a JSON encode and a UseNumber decode, the
// way every frame travels between client and server.
func roundTrip(t *testing.T, v, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	dec.UseNumber()
	if err := dec.Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	f := matchertest.NewFixture()
	rel, _ := f.Catalog.Get("items")
	orig := tuple.New(value.Int(7), value.Int(3), value.Int(10), value.Float(2.5))

	var raw []any
	roundTrip(t, wire.FromTuple(orig), &raw)
	got, err := wire.ToTuple(rel, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("tuple round trip: got %v, want %v", got, orig)
	}

	// Arity and kind mismatches are rejected.
	if _, err := wire.ToTuple(rel, raw[:2]); err == nil {
		t.Fatal("short tuple accepted")
	}
	raw[0] = "seven"
	if _, err := wire.ToTuple(rel, raw); err == nil {
		t.Fatal("string for int attribute accepted")
	}
}

func TestPredicateRoundTrip(t *testing.T) {
	f := matchertest.NewFixture()
	cases := []*pred.Predicate{
		pred.New(1, "emp"),
		pred.New(2, "emp",
			pred.IvClause("age", interval.Open(value.Int(30), value.Int(50))),
			pred.EqClause("dept", value.String_("shoe"))),
		pred.New(3, "emp",
			pred.IvClause("salary", interval.AtLeast(value.Int(20000))),
			pred.FnClause("age", "isodd")),
		pred.New(4, "items",
			pred.IvClause("price", interval.OpenClosed(value.Float(1.5), value.Float(9.5)))),
		pred.New(5, "events",
			pred.EqClause("open", value.Bool(true)),
			pred.IvClause("kind", interval.AtMost(value.String_("info")))),
	}
	for _, orig := range cases {
		var wp wire.Predicate
		roundTrip(t, wire.FromPredicate(orig), &wp)
		got, err := wire.ToPredicate(f.Catalog, orig.ID, &wp)
		if err != nil {
			t.Fatalf("%v: %v", orig, err)
		}
		if got.String() != orig.String() {
			t.Fatalf("predicate round trip: got %v, want %v", got, orig)
		}
		if err := got.Validate(f.Catalog, f.Funcs); err != nil {
			t.Fatalf("%v: decoded predicate invalid: %v", orig, err)
		}
		// The decoded predicate must match exactly the tuples the
		// original matches.
		ob, err := orig.Bind(f.Catalog, f.Funcs)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := got.Bind(f.Catalog, f.Funcs)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := f.Catalog.Get(orig.Rel)
		rng := newRand(int64(orig.ID))
		for i := 0; i < 200; i++ {
			tp := f.RandomTuple(rng, rel)
			if ob.Match(tp) != gb.Match(tp) {
				t.Fatalf("%v: decoded predicate diverges on %v", orig, tp)
			}
		}
	}
}

func TestToPredicateErrors(t *testing.T) {
	f := matchertest.NewFixture()
	for _, wp := range []*wire.Predicate{
		{Rel: "nosuch"},
		{Rel: "emp", Clauses: []wire.Clause{{Attr: "nosuch", Eq: "x"}}},
		{Rel: "emp", Clauses: []wire.Clause{{Attr: "age", Eq: "notanint"}}},
	} {
		if _, err := wire.ToPredicate(f.Catalog, 1, wp); err == nil {
			t.Fatalf("ToPredicate(%+v) accepted", wp)
		}
	}
}

func TestIDConversion(t *testing.T) {
	ids := []pred.ID{3, 1, 2}
	if got := wire.ToIDs(wire.FromIDs(ids)); !reflect.DeepEqual(got, ids) {
		t.Fatalf("ID round trip: %v", got)
	}
	if wire.FromIDs(nil) != nil || wire.ToIDs(nil) != nil {
		t.Fatal("nil should stay nil")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
