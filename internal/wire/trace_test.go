package wire

import (
	"encoding/json"
	"testing"
)

// TestUntracedFramesUnchanged pins the exact bytes of requests and
// messages that carry no trace context: the `trace` field is opt-in,
// so a client or server from before the field existed must see
// byte-identical frames. If this test breaks, the protocol changed for
// everyone, not just traced traffic.
func TestUntracedFramesUnchanged(t *testing.T) {
	req := Request{ID: 7, Op: OpInsert, Relation: "emp",
		Tuple: []any{"ada", 52, 18000, "deli"}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	wantReq := `{"id":7,"op":"insert","relation":"emp","tuple":["ada",52,18000,"deli"]}`
	if string(b) != wantReq {
		t.Errorf("untraced request bytes changed:\ngot  %s\nwant %s", b, wantReq)
	}

	msg := Message{Type: TypeResponse, ID: 7, OK: true, TupleID: 3, WalSeq: 42}
	b, err = json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	wantMsg := `{"type":"response","id":7,"ok":true,"tuple_id":3,"wal_seq":42}`
	if string(b) != wantMsg {
		t.Errorf("untraced message bytes changed:\ngot  %s\nwant %s", b, wantMsg)
	}
}

// TestTraceContextRoundTrip covers the traced path: the context
// survives a request and response round trip, and absent contexts
// decode to nil (not a zero-value struct).
func TestTraceContextRoundTrip(t *testing.T) {
	req := Request{ID: 9, Op: OpMatch, Relation: "emp",
		Tuple: []any{"bob", 33, 25000, "shoe"},
		Trace: &TraceContext{ID: "00000000deadbeef", Span: 1}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace == nil || back.Trace.ID != "00000000deadbeef" || back.Trace.Span != 1 {
		t.Errorf("request trace context = %+v", back.Trace)
	}

	msg := Message{Type: TypeResponse, ID: 9, OK: true,
		Trace: &TraceContext{ID: "00000000deadbeef"}}
	b, err = json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var mback Message
	if err := json.Unmarshal(b, &mback); err != nil {
		t.Fatal(err)
	}
	if mback.Trace == nil || mback.Trace.ID != "00000000deadbeef" || mback.Trace.Span != 0 {
		t.Errorf("message trace context = %+v", mback.Trace)
	}

	// Span 0 (the common case: only an id) stays off the wire.
	b, _ = json.Marshal(TraceContext{ID: "ff"})
	if string(b) != `{"id":"ff"}` {
		t.Errorf("minimal context = %s", b)
	}

	var plain Request
	if err := json.Unmarshal([]byte(`{"id":1,"op":"ping"}`), &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Errorf("absent trace decoded to %+v, want nil", plain.Trace)
	}
}
