// Package wire defines the predmatchd network protocol: the message
// types exchanged between the rule-service daemon (internal/server) and
// its clients (internal/client), plus the codecs that translate between
// JSON literals and the engine's typed values, tuples and predicates.
//
// Framing is newline-delimited JSON: every message is one JSON object
// followed by '\n', at most MaxLineBytes long. The client sends Request
// objects; the server sends Message objects, which are either responses
// (correlated to a request by ID) or asynchronous subscription
// notifications. See docs/PROTOCOL.md for the full protocol contract,
// including subscription ordering and the overflow/drop policy.
package wire

import (
	"encoding/json"
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// MaxLineBytes bounds one framed message. Requests above the limit are
// rejected; the bound keeps a hostile or buggy client from ballooning
// server memory.
const MaxLineBytes = 1 << 20

// MaxReplFrameBytes bounds one frame on a replication stream, which is
// a server-to-server connection: a frame may carry a full state
// snapshot, so the limit matches the WAL's own record ceiling rather
// than the client line limit.
const MaxReplFrameBytes = 128 << 20

// Request operation names.
const (
	OpDeclare     = "declare"     // declare a relation schema
	OpIndex       = "index"       // create a secondary storage index
	OpRule        = "rule"        // define a rule from source text
	OpDropRule    = "droprule"    // drop a rule by name
	OpAddPred     = "addpred"     // register a bare predicate (server assigns the ID)
	OpRemovePred  = "rmpred"      // unregister a bare predicate
	OpInsert      = "insert"      // insert a tuple (fires rules)
	OpUpdate      = "update"      // update a tuple (fires rules)
	OpDelete      = "delete"      // delete a tuple (fires rules)
	OpMatch       = "match"       // match one tuple, no storage change
	OpMatchBatch  = "matchbatch"  // match a batch of tuples
	OpSubscribe   = "subscribe"   // start streaming firing notifications
	OpUnsubscribe = "unsubscribe" // stop the notification stream
	OpStats       = "stats"       // server + shard statistics
	OpPing        = "ping"        // liveness probe
	OpBackup      = "backup"      // force a durable checkpoint snapshot
	OpReplicate   = "replicate"   // follower: stream snapshot + live log tail
	OpPromote     = "promote"     // promote a follower to leader (seals replication)
)

// Attr is one attribute of a relation declaration.
type Attr struct {
	Name string `json:"name"`
	Type string `json:"type"` // int, float, string, bool (value.KindFromName)
}

// Bound is one end of a predicate clause interval; a nil *Bound means
// the end is unbounded (±infinity).
type Bound struct {
	Value any  `json:"value"`
	Open  bool `json:"open,omitempty"` // exclusive endpoint when true
}

// Clause is one conjunct of a wire predicate. Exactly one of Fn / Eq /
// (Lo,Hi) families is meaningful: Fn names a registered boolean
// function, Eq is a point equality, otherwise the clause is the
// interval [Lo, Hi] with nil meaning unbounded.
type Clause struct {
	Attr string `json:"attr"`
	Fn   string `json:"fn,omitempty"`
	Eq   any    `json:"eq,omitempty"`
	Lo   *Bound `json:"lo,omitempty"`
	Hi   *Bound `json:"hi,omitempty"`
}

// Predicate is the wire form of a disjunction-free predicate. The
// server assigns the ID on addpred and returns it in the response.
type Predicate struct {
	Rel     string   `json:"rel"`
	Clauses []Clause `json:"clauses,omitempty"`
}

// Request is one client command. Only the fields of the given Op are
// consulted; the rest stay at their zero values and are omitted on the
// wire.
type Request struct {
	ID uint64 `json:"id"`
	Op string `json:"op"`

	Relation string     `json:"relation,omitempty"` // declare, index, insert/update/delete, match*
	Attrs    []Attr     `json:"attrs,omitempty"`    // declare
	Attr     string     `json:"attr,omitempty"`     // index
	Source   string     `json:"source,omitempty"`   // rule
	Name     string     `json:"name,omitempty"`     // droprule
	Pred     *Predicate `json:"pred,omitempty"`     // addpred
	PredID   int64      `json:"pred_id,omitempty"`  // rmpred
	TupleID  int64      `json:"tuple_id,omitempty"` // update, delete
	Tuple    []any      `json:"tuple,omitempty"`    // insert, update, match
	Tuples   [][]any    `json:"tuples,omitempty"`   // matchbatch
	Rules    []string   `json:"rules,omitempty"`    // subscribe filter (empty = all rules)
	Preds    bool       `json:"preds,omitempty"`    // subscribe: also stream direct-predicate matches

	// FromSeq is the replicate resume cursor: the last WAL sequence the
	// follower has already applied (0 = nothing; stream from the start or
	// from the newest snapshot when the tail was pruned).
	FromSeq uint64 `json:"from_seq,omitempty"`
	// MinSeq is the read-your-writes token on match/matchbatch: the
	// server answers only once its applied WAL sequence has reached it
	// (a follower waits for replication to catch up, then serves or
	// redirects). Mutation acks carry the token in Message.WalSeq.
	MinSeq uint64 `json:"min_seq,omitempty"`

	// Trace is the optional request-scoped trace context (absent on the
	// wire when nil, so untraced traffic is byte-identical to protocol
	// versions that predate it). A server with tracing enabled joins the
	// carried trace instead of making its own sampling decision, which
	// is how one trace crosses the network: client → leader → WAL →
	// replication stream → follower.
	Trace *TraceContext `json:"trace,omitempty"`
}

// TraceContext is the wire-portable identity of a trace: the trace id
// and (optionally) the sending side's span id, so a remote process can
// attach its own spans to the same trace. The id is 1–16 lowercase hex
// digits (see internal/trace FormatID/ParseID); presence of a context
// means "trace this" — there is no separate sampled bit.
type TraceContext struct {
	ID   string `json:"id"`
	Span uint64 `json:"span,omitempty"`
}

// Message type discriminators.
const (
	TypeResponse = "response"
	TypeNotify   = "notify"
	TypeRepl     = "repl" // replication stream frame (snapshot or one WAL record)
)

// ShardStat mirrors shard.ShardStats for the stats response.
type ShardStat struct {
	Rel        string `json:"rel"`
	Predicates int    `json:"predicates"`
	Version    uint64 `json:"version"`
	// Structure names the attribute-index structure currently serving
	// the shard ("ibs", "hint", …) — under the adaptive meta engine it
	// can change between stats calls.
	Structure string `json:"structure,omitempty"`
}

// MetaStat reports the adaptive meta engine's per-relation decisions
// in the stats response.
type MetaStat struct {
	// Default is the warm-up/fallback structure relations start on.
	Default string        `json:"default"`
	Rels    []MetaRelStat `json:"rels,omitempty"`
}

// MetaRelStat is one relation's current adaptive-index decision.
type MetaRelStat struct {
	Rel        string  `json:"rel"`
	Structure  string  `json:"structure"`
	SinceSecs  float64 `json:"since_secs"`           // residency on the current structure
	Migrations uint64  `json:"migrations,omitempty"` // online migrations so far
	Reason     string  `json:"reason,omitempty"`     // human-readable last decision
	EstNS      float64 `json:"est_ns,omitempty"`     // modelled cost/op of the choice
	AltName    string  `json:"alt,omitempty"`        // best rejected alternative
	AltNS      float64 `json:"alt_ns,omitempty"`
	StabRate   float64 `json:"stab_rate,omitempty"`  // EWMA stabs/sec
	WriteRate  float64 `json:"write_rate,omitempty"` // EWMA writes/sec
}

// ConnStat describes one client connection in the stats response: its
// notification-queue occupancy and delivery counters, which is what an
// operator reads to find the subscriber that is falling behind.
type ConnStat struct {
	Remote     string `json:"remote"`
	Subscribed bool   `json:"subscribed"`
	// Queue/QueueCap are the notification queue's current depth and
	// capacity; a queue pinned at capacity is a slow consumer.
	Queue    int `json:"queue"`
	QueueCap int `json:"queue_cap"`
	// Delivered counts notifications actually written to this
	// connection; Dropped those the overflow policy discarded; LastSeq
	// is the last sequence number generated for its subscription
	// (LastSeq - Delivered - Queue ≈ Dropped).
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped,omitempty"`
	LastSeq   uint64 `json:"last_seq,omitempty"`
	// Rules is the subscription's rule filter (empty = every rule).
	Rules []string `json:"rules,omitempty"`
	// Replica marks a follower's replication stream; ReplSeq is the last
	// WAL sequence shipped to it (LastSeq in the wal section minus
	// ReplSeq is that follower's lag as seen from the leader).
	Replica bool   `json:"replica,omitempty"`
	ReplSeq uint64 `json:"repl_seq,omitempty"`
}

// TreeStat mirrors core.TreeStats: the shape of one attribute IBS-tree,
// exposed so remote clients can check the paper's space and balance
// claims without shell access to the daemon.
type TreeStat struct {
	Rel       string `json:"rel"`
	Attr      string `json:"attr"`
	Intervals int    `json:"intervals"`
	Nodes     int    `json:"nodes"`
	Markers   int    `json:"markers"`
	Height    int    `json:"height"`
}

// RelStat describes one stored relation in the stats response.
type RelStat struct {
	Name   string `json:"name"`
	Rows   int    `json:"rows"`
	NextID int64  `json:"next_id"`
}

// WALStat describes the durability subsystem in the stats response;
// present only when the daemon runs with a data directory.
type WALStat struct {
	// LastSeq is the last assigned log sequence; DurableSeq the last one
	// known fsynced (they track each other under `always`, DurableSeq
	// lags under `interval`/`off`).
	LastSeq    uint64 `json:"last_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	// SnapshotSeq is the log sequence covered by the newest checkpoint
	// (0 = none yet).
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	Segments    int    `json:"segments"`
	Sync        string `json:"sync"`
}

// BackupInfo is the payload of a backup response: where the forced
// checkpoint landed.
type BackupInfo struct {
	Path  string `json:"path"`
	Seq   uint64 `json:"seq"`
	Bytes int64  `json:"bytes"`
}

// ReplStat describes the replication role in the stats response;
// present only when the daemon runs with a data directory.
type ReplStat struct {
	// Role is "leader" or "follower". A promoted follower reports
	// "leader" from the moment promote is acked.
	Role string `json:"role"`
	// Leader is the upstream address a follower replicates from (and
	// redirects mutations to); empty on a leader.
	Leader string `json:"leader,omitempty"`
	// AppliedSeq is the follower's replication frontier: the last WAL
	// sequence applied locally. LeaderSeq is the leader's last assigned
	// sequence as of the most recent stream frame; Lag is their
	// difference (0 when caught up or when the leader frontier is
	// unknown).
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	LeaderSeq  uint64 `json:"leader_seq,omitempty"`
	Lag        uint64 `json:"lag,omitempty"`
	// Reconnects counts replication stream re-establishments (the first
	// connection is not a reconnect).
	Reconnects uint64 `json:"reconnects,omitempty"`
	// Followers is the number of replication streams a leader is
	// currently serving.
	Followers int `json:"followers,omitempty"`
}

// PrefilterStat reports the sharded matcher's attribute-prefilter
// admission counters: how many tuples went through to a full index
// probe versus being proven unmatchable by the per-relation attribute
// envelopes alone.
type PrefilterStat struct {
	Admitted uint64 `json:"admitted"`
	Skipped  uint64 `json:"skipped"`
}

// ProfileStat is one relation's workload profile in the stats
// response: the feed for index-strategy selection (stab volume and
// latency, observed selectivity, write rate, and which attributes the
// probes actually consulted).
type ProfileStat struct {
	Rel string `json:"rel"`
	// Stabs counts index probes that ran; Skipped the probes the
	// prefilter proved unmatchable without touching a tree.
	Stabs   uint64 `json:"stabs"`
	Skipped uint64 `json:"skipped,omitempty"`
	// Results is the total matches returned across all stabs
	// (Results/Stabs = observed selectivity).
	Results uint64 `json:"results,omitempty"`
	// StabSecs is cumulative stab latency in seconds.
	StabSecs float64 `json:"stab_secs,omitempty"`
	// Writes counts applied mutation events against the relation.
	Writes uint64 `json:"writes,omitempty"`
	// Attrs is the queried-attribute histogram: per attribute, how many
	// stabs consulted it (i.e. it carried an interval clause).
	Attrs []AttrProfile `json:"attrs,omitempty"`
}

// AttrProfile is one attribute's entry in the queried histogram.
type AttrProfile struct {
	Name    string `json:"name"`
	Queried uint64 `json:"queried"`
}

// Stats is the payload of a stats response.
type Stats struct {
	Rules       []string       `json:"rules"`
	Matcher     string         `json:"matcher"`
	Predicates  int            `json:"predicates"`
	Prefilter   *PrefilterStat `json:"prefilter,omitempty"`
	Profiles    []ProfileStat  `json:"profiles,omitempty"`
	Shards      []ShardStat    `json:"shards,omitempty"`
	Meta        *MetaStat      `json:"meta,omitempty"`
	Trees       []TreeStat     `json:"trees,omitempty"`
	Relations   []RelStat      `json:"relations,omitempty"`
	WAL         *WALStat       `json:"wal,omitempty"`
	Repl        *ReplStat      `json:"repl,omitempty"`
	Conns       int            `json:"conns"`
	Subs        int            `json:"subs"`
	Delivered   uint64         `json:"delivered"`
	Dropped     uint64         `json:"dropped"`
	Connections []ConnStat     `json:"connections,omitempty"`
}

// Message is one server-to-client frame: a response when Type is
// "response" (ID echoes the request), a subscription notification when
// Type is "notify".
type Message struct {
	Type string `json:"type"`

	// Response fields.
	ID      uint64      `json:"id,omitempty"`
	OK      bool        `json:"ok,omitempty"`
	Error   string      `json:"error,omitempty"`
	TupleID int64       `json:"tuple_id,omitempty"` // insert result
	PredID  int64       `json:"pred_id,omitempty"`  // addpred result
	Name    string      `json:"name,omitempty"`     // rule result: parsed rule name
	Matches []int64     `json:"matches,omitempty"`  // match result
	Batch   [][]int64   `json:"batch,omitempty"`    // matchbatch result
	Stats   *Stats      `json:"stats,omitempty"`    // stats result
	Firings int         `json:"firings,omitempty"`  // rules fired by a mutation
	Backup  *BackupInfo `json:"backup,omitempty"`   // backup result
	// WalSeq is the WAL sequence a mutation or DDL op was logged as (the
	// read-your-writes token for Request.MinSeq), and the sealed log
	// frontier in a promote response. Leader is the redirect hint a
	// follower attaches when rejecting a mutation, and on min_seq
	// timeouts.
	WalSeq uint64 `json:"wal_seq,omitempty"`
	Leader string `json:"leader,omitempty"`

	// Notification fields. Seq numbers every notification generated for
	// the subscription (starting at 1), assigned before the overflow
	// policy decides whether to deliver or drop: a gap in received Seq
	// values is exactly the set of dropped notifications. Dropped is the
	// cumulative drop count for the subscription at send time.
	Seq      uint64 `json:"seq,omitempty"`
	Rule     string `json:"rule,omitempty"`
	Relation string `json:"relation,omitempty"`
	EventOp  string `json:"event_op,omitempty"` // insert, update, delete
	EventID  int64  `json:"event_id,omitempty"` // tuple ID of the triggering event
	Tuple    []any  `json:"tuple,omitempty"`    // matched tuple image
	Depth    int    `json:"depth,omitempty"`    // forward-chaining cascade depth
	Dropped  uint64 `json:"dropped,omitempty"`

	// Replication stream fields (Type == TypeRepl). Exactly one of Snap
	// / Rec is set: Snap carries a full wal.Snapshot (stream start when
	// the requested tail was pruned), Rec one wal.Record. Both are raw
	// JSON because package wal sits above wire in the import graph; the
	// follower decodes them with the wal codecs. LeaderSeq is the
	// leader's last assigned WAL sequence at send time, so the follower
	// can compute its lag.
	Snap      json.RawMessage `json:"snap,omitempty"`
	Rec       json.RawMessage `json:"rec,omitempty"`
	LeaderSeq uint64          `json:"leader_seq,omitempty"`

	// Trace echoes the trace context on responses to traced requests
	// (and carries the server-assigned id when the server head-sampled
	// an untraced request), so callers can log an explorable id.
	// Omitted everywhere else: frames without tracing are byte-identical
	// to protocol versions that predate the field.
	Trace *TraceContext `json:"trace,omitempty"`
}

// FromValue converts an engine value to its JSON literal: numbers for
// int/float, a string for string, a bool for bool.
func FromValue(v value.Value) any {
	switch v.Kind() {
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		return v.AsBool()
	default:
		return nil
	}
}

// FromTuple converts a tuple to its wire form.
func FromTuple(t tuple.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		out[i] = FromValue(v)
	}
	return out
}

// ToValue converts a decoded JSON literal to a value of the given kind.
// Numbers may arrive as json.Number (a decoder with UseNumber, as the
// server and client both use) or float64 (a plain decoder).
func ToValue(kind value.Kind, raw any) (value.Value, error) {
	switch kind {
	case value.KindInt:
		switch n := raw.(type) {
		case json.Number:
			i, err := n.Int64()
			if err != nil {
				return value.Value{}, fmt.Errorf("wire: %v is not an int", raw)
			}
			return value.Int(i), nil
		case float64:
			if n != float64(int64(n)) {
				return value.Value{}, fmt.Errorf("wire: %v is not an int", raw)
			}
			return value.Int(int64(n)), nil
		case int64:
			return value.Int(n), nil
		}
	case value.KindFloat:
		switch n := raw.(type) {
		case json.Number:
			f, err := n.Float64()
			if err != nil {
				return value.Value{}, fmt.Errorf("wire: %v is not a float", raw)
			}
			return value.Float(f), nil
		case float64:
			return value.Float(n), nil
		case int64:
			return value.Float(float64(n)), nil
		}
	case value.KindString:
		if s, ok := raw.(string); ok {
			return value.String_(s), nil
		}
	case value.KindBool:
		if b, ok := raw.(bool); ok {
			return value.Bool(b), nil
		}
	}
	return value.Value{}, fmt.Errorf("wire: cannot decode %T %v as %s", raw, raw, kind)
}

// ToTuple decodes a wire tuple against a relation schema.
func ToTuple(rel *schema.Relation, raw []any) (tuple.Tuple, error) {
	attrs := rel.Attrs()
	if len(raw) != len(attrs) {
		return nil, fmt.Errorf("wire: tuple arity %d does not match relation %s (arity %d)",
			len(raw), rel.Name(), len(attrs))
	}
	t := make(tuple.Tuple, len(raw))
	for i, r := range raw {
		v, err := ToValue(attrs[i].Type, r)
		if err != nil {
			return nil, fmt.Errorf("wire: attribute %s of %s: %w", attrs[i].Name, rel.Name(), err)
		}
		t[i] = v
	}
	return t, nil
}

// FromPredicate converts an engine predicate to its wire form (the ID is
// not carried; the server assigns IDs).
func FromPredicate(p *pred.Predicate) *Predicate {
	wp := &Predicate{Rel: p.Rel}
	for _, c := range p.Clauses {
		wc := Clause{Attr: c.Attr}
		switch c.Kind {
		case pred.KindFunc:
			wc.Fn = c.Func
		default:
			if c.Iv.IsPoint(value.Compare) {
				wc.Eq = FromValue(c.Iv.Lo.Value)
			} else {
				if c.Iv.Lo.Kind == interval.Finite {
					wc.Lo = &Bound{Value: FromValue(c.Iv.Lo.Value), Open: !c.Iv.Lo.Closed}
				}
				if c.Iv.Hi.Kind == interval.Finite {
					wc.Hi = &Bound{Value: FromValue(c.Iv.Hi.Value), Open: !c.Iv.Hi.Closed}
				}
			}
		}
		wp.Clauses = append(wp.Clauses, wc)
	}
	return wp
}

// ToPredicate decodes a wire predicate against a schema catalog,
// assigning it the given ID. Typing errors (unknown relation or
// attribute, mismatched bound kinds) surface here, before the predicate
// reaches the matcher.
func ToPredicate(cat *schema.Catalog, id pred.ID, wp *Predicate) (*pred.Predicate, error) {
	rel, ok := cat.Get(wp.Rel)
	if !ok {
		return nil, fmt.Errorf("wire: unknown relation %q", wp.Rel)
	}
	var clauses []pred.Clause
	for _, wc := range wp.Clauses {
		kind, ok := rel.AttrType(wc.Attr)
		if !ok {
			return nil, fmt.Errorf("wire: relation %s has no attribute %q", wp.Rel, wc.Attr)
		}
		switch {
		case wc.Fn != "":
			clauses = append(clauses, pred.FnClause(wc.Attr, wc.Fn))
		case wc.Eq != nil:
			v, err := ToValue(kind, wc.Eq)
			if err != nil {
				return nil, err
			}
			clauses = append(clauses, pred.EqClause(wc.Attr, v))
		default:
			iv := interval.All[value.Value]()
			if wc.Lo != nil {
				v, err := ToValue(kind, wc.Lo.Value)
				if err != nil {
					return nil, err
				}
				iv.Lo = interval.FiniteBound(v, !wc.Lo.Open)
			}
			if wc.Hi != nil {
				v, err := ToValue(kind, wc.Hi.Value)
				if err != nil {
					return nil, err
				}
				iv.Hi = interval.FiniteBound(v, !wc.Hi.Open)
			}
			clauses = append(clauses, pred.IvClause(wc.Attr, iv))
		}
	}
	return pred.New(id, wp.Rel, clauses...), nil
}

// FromIDs converts predicate IDs to the wire integer form.
func FromIDs(ids []pred.ID) []int64 {
	if ids == nil {
		return nil
	}
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

// ToIDs converts wire integers back to predicate IDs.
func ToIDs(raw []int64) []pred.ID {
	if raw == nil {
		return nil
	}
	out := make([]pred.ID, len(raw))
	for i, id := range raw {
		out[i] = pred.ID(id)
	}
	return out
}
