package segtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
)

func buildRandom(t *testing.T, seed int64, n int) (*Tree[int64], map[markset.ID]interval.Interval[int64]) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := map[markset.ID]interval.Interval[int64]{}
	var items []Item[int64]
	for i := 0; i < n; i++ {
		iv := ivindex.RandomInterval(rng, 100, true)
		items = append(items, Item[int64]{ID: markset.ID(i), Iv: iv})
		ref[markset.ID(i)] = iv
	}
	return Build(ivindex.Int64Cmp, items), ref
}

func TestStabAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tr, ref := buildRandom(t, seed, 120)
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d", tr.Len())
		}
		for x := int64(-5); x <= 105; x++ {
			got := tr.Stab(x)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			var want []markset.ID
			for id, iv := range ref {
				if iv.Contains(ivindex.Int64Cmp, x) {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Stab(%d) = %v, want %v", seed, x, got, want)
			}
		}
	}
}

func TestEmpty(t *testing.T) {
	tr := Build[int64](ivindex.Int64Cmp, nil)
	if got := tr.Stab(5); len(got) != 0 {
		t.Fatalf("Stab on empty = %v", got)
	}
	if tr.Len() != 0 || tr.Markers() != 0 {
		t.Fatal("empty tree non-zero accounting")
	}
}

func TestSingle(t *testing.T) {
	tr := Build(ivindex.Int64Cmp, []Item[int64]{{ID: 7, Iv: interval.ClosedOpen[int64](3, 9)}})
	cases := map[int64]int{2: 0, 3: 1, 8: 1, 9: 0}
	for x, n := range cases {
		if got := tr.Stab(x); len(got) != n {
			t.Errorf("Stab(%d) = %v, want %d ids", x, got, n)
		}
	}
}

func TestOpenEnded(t *testing.T) {
	tr := Build(ivindex.Int64Cmp, []Item[int64]{
		{ID: 1, Iv: interval.AtMost[int64](10)},
		{ID: 2, Iv: interval.Greater[int64](20)},
		{ID: 3, Iv: interval.All[int64]()},
	})
	check := func(x int64, want []markset.ID) {
		t.Helper()
		got := tr.Stab(x)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Stab(%d) = %v, want %v", x, got, want)
		}
	}
	check(-1000, []markset.ID{1, 3})
	check(10, []markset.ID{1, 3})
	check(15, []markset.ID{3})
	check(20, []markset.ID{3})
	check(21, []markset.ID{2, 3})
	check(1000000, []markset.ID{2, 3})
}

// TestMarkersLogarithmic checks the O(N log N) registration bound.
func TestMarkersLogarithmic(t *testing.T) {
	tr, _ := buildRandom(t, 42, 512)
	if m := tr.Markers(); m > 512*12*2 {
		t.Errorf("markers = %d for 512 intervals, expected O(N log N)", m)
	}
	if tr.Nodes() == 0 {
		t.Error("no nodes built")
	}
}

func TestSkipsInvalid(t *testing.T) {
	tr := Build(ivindex.Int64Cmp, []Item[int64]{
		{ID: 1, Iv: interval.Closed[int64](5, 1)}, // invalid
		{ID: 2, Iv: interval.Point[int64](3)},
	})
	if got := tr.Stab(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Stab(3) = %v", got)
	}
}
