// Package segtree implements a static segment tree for interval
// stabbing (Bentley; surveyed in Samet 1988/1990, the references the
// paper cites). The structure is build-once: the paper's motivation for
// the IBS-tree is precisely that "segment trees and interval trees are
// not adequate because they do not allow dynamic insertion and deletion
// of predicates" — the benchmark suite quantifies that by comparing a
// rebuild-per-change segment tree against the IBS-tree's true updates.
//
// Construction: the sorted distinct finite endpoints of all intervals
// define 2k+1 elementary slots (each endpoint value, the open gaps
// between adjacent endpoints, and the two unbounded outer gaps). A
// balanced binary tree is laid over the slots, and each interval is
// registered at the O(log N) canonical nodes that exactly cover its
// slots. A stabbing query walks one root-to-leaf path, collecting the
// id lists of the nodes it passes: O(log N + L).
package segtree

import (
	"sort"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// ID identifies an interval.
type ID = markset.ID

// Item is one input interval.
type Item[T any] struct {
	ID ID
	Iv interval.Interval[T]
}

// Tree is an immutable segment tree.
type Tree[T any] struct {
	cmp    interval.Cmp[T]
	points []T       // sorted distinct finite endpoints
	nodes  []segNode // heap-layout tree over slot indices
	n      int       // number of intervals
}

type segNode struct {
	lo, hi int // slot index range [lo, hi] covered by this node
	ids    []ID
}

// Build constructs the tree over items. Malformed intervals are skipped
// silently only if invalid; callers should validate beforehand.
func Build[T any](cmp interval.Cmp[T], items []Item[T]) *Tree[T] {
	t := &Tree[T]{cmp: cmp, n: len(items)}

	// Collect sorted distinct endpoints.
	var pts []T
	for _, it := range items {
		if it.Iv.Lo.Kind == interval.Finite {
			pts = append(pts, it.Iv.Lo.Value)
		}
		if it.Iv.Hi.Kind == interval.Finite {
			pts = append(pts, it.Iv.Hi.Value)
		}
	}
	sort.Slice(pts, func(i, j int) bool { return cmp(pts[i], pts[j]) < 0 })
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || cmp(pts[i-1], p) != 0 {
			uniq = append(uniq, p)
		}
	}
	t.points = uniq

	// Slots: index 2i+1 is the point points[i]; even indexes are gaps:
	// slot 0 = (-inf, p0), slot 2i = (p(i-1), p(i)), slot 2k = (p(k-1), +inf).
	slotCount := 2*len(t.points) + 1

	// Build a balanced hierarchy over [0, slotCount-1].
	var build func(lo, hi int) int
	build = func(lo, hi int) int {
		idx := len(t.nodes)
		t.nodes = append(t.nodes, segNode{lo: lo, hi: hi})
		if lo < hi {
			mid := (lo + hi) / 2
			left := build(lo, mid)
			right := build(mid+1, hi)
			// Children positions are recorded implicitly: we re-derive
			// them during descent by re-running the same split, so only
			// record the node range. left/right kept for clarity.
			_ = left
			_ = right
		}
		return idx
	}
	if slotCount > 0 {
		build(0, slotCount-1)
	}

	// Register each interval at its canonical nodes.
	for _, it := range items {
		if it.Iv.Validate(cmp) != nil {
			continue
		}
		first, last := t.slotRange(it.Iv)
		if first > last {
			continue
		}
		t.place(0, it.ID, first, last)
	}
	return t
}

// Len returns the number of intervals the tree was built over.
func (t *Tree[T]) Len() int { return t.n }

// Nodes returns the number of tree nodes (space accounting).
func (t *Tree[T]) Nodes() int { return len(t.nodes) }

// Markers returns the total number of interval registrations across
// nodes — the segment tree's O(N log N) space term.
func (t *Tree[T]) Markers() int {
	total := 0
	for _, n := range t.nodes {
		total += len(n.ids)
	}
	return total
}

// childIndexes derives the heap positions of a node's children: the
// left child is laid out immediately after the parent, and the right
// child after the complete left subtree. Subtree sizes are recomputed
// from ranges (2*(#slots)-1 nodes for a full binary tree over #slots).
func (t *Tree[T]) childIndexes(idx int) (left, right int) {
	n := t.nodes[idx]
	mid := (n.lo + n.hi) / 2
	left = idx + 1
	leftSlots := mid - n.lo + 1
	right = left + 2*leftSlots - 1
	return left, right
}

// place registers id at the canonical nodes covering [first, last].
func (t *Tree[T]) place(idx int, id ID, first, last int) {
	n := &t.nodes[idx]
	if first <= n.lo && n.hi <= last {
		n.ids = append(n.ids, id)
		return
	}
	mid := (n.lo + n.hi) / 2
	left, right := t.childIndexes(idx)
	if first <= mid {
		t.place(left, id, first, min(last, mid))
	}
	if last > mid {
		t.place(right, id, max(first, mid+1), last)
	}
}

// slotRange maps an interval to the slots it covers.
func (t *Tree[T]) slotRange(iv interval.Interval[T]) (first, last int) {
	k := len(t.points)
	switch iv.Lo.Kind {
	case interval.NegInf:
		first = 0
	default:
		i := sort.Search(k, func(i int) bool { return t.cmp(t.points[i], iv.Lo.Value) >= 0 })
		// points[i] == lo.Value is guaranteed (every finite endpoint is a point).
		if iv.Lo.Closed {
			first = 2*i + 1 // include the endpoint slot
		} else {
			first = 2*i + 2 // start at the gap above it
		}
	}
	switch iv.Hi.Kind {
	case interval.PosInf:
		last = 2 * k
	default:
		i := sort.Search(k, func(i int) bool { return t.cmp(t.points[i], iv.Hi.Value) >= 0 })
		if iv.Hi.Closed {
			last = 2*i + 1
		} else {
			last = 2 * i // stop at the gap below it
		}
	}
	return first, last
}

// slotOf maps a query point to its elementary slot.
func (t *Tree[T]) slotOf(x T) int {
	k := len(t.points)
	i := sort.Search(k, func(i int) bool { return t.cmp(t.points[i], x) >= 0 })
	if i < k && t.cmp(t.points[i], x) == 0 {
		return 2*i + 1
	}
	return 2 * i // gap below points[i] (or the outer gaps)
}

// Stab returns the ids of all intervals containing x.
func (t *Tree[T]) Stab(x T) []ID { return t.StabAppend(x, nil) }

// StabAppend appends the ids of all intervals containing x to dst.
func (t *Tree[T]) StabAppend(x T, dst []ID) []ID {
	if len(t.nodes) == 0 {
		return dst
	}
	slot := t.slotOf(x)
	idx := 0
	for {
		n := &t.nodes[idx]
		dst = append(dst, n.ids...)
		if n.lo == n.hi {
			return dst
		}
		mid := (n.lo + n.hi) / 2
		left, right := t.childIndexes(idx)
		if slot <= mid {
			idx = left
		} else {
			idx = right
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
