package join

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func testCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	for _, r := range []*schema.Relation{
		schema.MustRelation("emp",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "dept", Type: value.KindString},
			schema.Attribute{Name: "salary", Type: value.KindInt},
		),
		schema.MustRelation("dept",
			schema.Attribute{Name: "dname", Type: value.KindString},
			schema.Attribute{Name: "budget", Type: value.KindInt},
			schema.Attribute{Name: "floor", Type: value.KindInt},
		),
		schema.MustRelation("building",
			schema.Attribute{Name: "floor", Type: value.KindInt},
			schema.Attribute{Name: "zone", Type: value.KindString},
		),
	} {
		if err := cat.Add(r); err != nil {
			panic(err)
		}
	}
	return cat
}

type collector struct {
	acts []Activation
}

func (c *collector) cb(a Activation) { c.acts = append(c.acts, a) }

func empT(name, dept string, salary int64) tuple.Tuple {
	return tuple.New(value.String_(name), value.String_(dept), value.Int(salary))
}

func deptT(dname string, budget, floor int64) tuple.Tuple {
	return tuple.New(value.String_(dname), value.Int(budget), value.Int(floor))
}

// binaryRule builds "emp.salary > 50000 AND emp.dept = dept.dname AND
// dept.budget < 100000" — high earner in an underfunded department.
func binaryRule(id RuleID) *Rule {
	return &Rule{
		ID: id,
		Sides: []Side{
			{Rel: "emp", Pred: pred.New(0, "emp",
				pred.IvClause("salary", interval.Greater(value.Int(50000))))},
			{Rel: "dept", Pred: pred.New(0, "dept",
				pred.IvClause("budget", interval.Less(value.Int(100000))))},
		},
		Conditions: []Condition{{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "dname"}},
	}
}

func TestBinaryJoinActivation(t *testing.T) {
	cat := testCatalog()
	col := &collector{}
	net := New(cat, pred.NewRegistry(), col.cb)
	if err := net.AddRule(binaryRule(1)); err != nil {
		t.Fatal(err)
	}

	// Department first, then matching employee.
	if err := net.Insert("dept", 1, deptT("shoe", 50000, 2)); err != nil {
		t.Fatal(err)
	}
	if len(col.acts) != 0 {
		t.Fatalf("premature activation: %+v", col.acts)
	}
	if err := net.Insert("emp", 10, empT("ada", "shoe", 60000)); err != nil {
		t.Fatal(err)
	}
	if len(col.acts) != 1 {
		t.Fatalf("activations = %d, want 1", len(col.acts))
	}
	a := col.acts[0]
	if a.Rule != 1 || a.IDs[0] != 10 || a.IDs[1] != 1 {
		t.Fatalf("activation = %+v", a)
	}

	// Non-matching inserts: wrong dept, low salary, rich dept.
	checkNoNew := func(what string) {
		t.Helper()
		if len(col.acts) != 1 {
			t.Fatalf("%s caused activation: %+v", what, col.acts)
		}
	}
	_ = net.Insert("emp", 11, empT("bob", "toy", 70000))
	checkNoNew("wrong dept")
	_ = net.Insert("emp", 12, empT("cyd", "shoe", 40000))
	checkNoNew("low salary")
	_ = net.Insert("dept", 2, deptT("gold", 900000, 3))
	checkNoNew("rich dept")
	_ = net.Insert("emp", 13, empT("dee", "gold", 80000))
	checkNoNew("emp in rich dept")

	// A second matching employee joins the same department.
	_ = net.Insert("emp", 14, empT("eve", "shoe", 99000))
	if len(col.acts) != 2 {
		t.Fatalf("activations = %d, want 2", len(col.acts))
	}

	// Memory sizes reflect the selections.
	if got := net.MemorySize(1, 0); got != 4 { // ada, bob, dee, eve (salary > 50000)
		t.Fatalf("emp memory = %d, want 4", got)
	}
	if got := net.MemorySize(1, 1); got != 1 { // shoe
		t.Fatalf("dept memory = %d, want 1", got)
	}
}

func TestDeleteRemovesFromMemories(t *testing.T) {
	cat := testCatalog()
	col := &collector{}
	net := New(cat, pred.NewRegistry(), col.cb)
	if err := net.AddRule(binaryRule(1)); err != nil {
		t.Fatal(err)
	}
	_ = net.Insert("dept", 1, deptT("shoe", 50000, 2))
	net.Delete("dept", 1)
	_ = net.Insert("emp", 10, empT("ada", "shoe", 60000))
	if len(col.acts) != 0 {
		t.Fatalf("deleted department still joined: %+v", col.acts)
	}
	if net.MemorySize(1, 1) != 0 {
		t.Fatal("memory not emptied")
	}
}

func TestUpdateMovesTupleAcrossMemories(t *testing.T) {
	cat := testCatalog()
	col := &collector{}
	net := New(cat, pred.NewRegistry(), col.cb)
	if err := net.AddRule(binaryRule(1)); err != nil {
		t.Fatal(err)
	}
	_ = net.Insert("dept", 1, deptT("shoe", 500000, 2)) // too rich: not stored
	if net.MemorySize(1, 1) != 0 {
		t.Fatal("rich department stored")
	}
	_ = net.Insert("emp", 10, empT("ada", "shoe", 60000))
	if len(col.acts) != 0 {
		t.Fatal("premature activation")
	}
	// Budget cut: the department now qualifies and the join fires.
	if err := net.Update("dept", 1, deptT("shoe", 80000, 2)); err != nil {
		t.Fatal(err)
	}
	if len(col.acts) != 1 {
		t.Fatalf("activations = %d, want 1 after update", len(col.acts))
	}
}

func TestThreeWayJoin(t *testing.T) {
	cat := testCatalog()
	col := &collector{}
	net := New(cat, pred.NewRegistry(), col.cb)
	// emp -> dept -> building chain.
	r := &Rule{
		ID: 7,
		Sides: []Side{
			{Rel: "emp"},
			{Rel: "dept"},
			{Rel: "building", Pred: pred.New(0, "building",
				pred.EqClause("zone", value.String_("red")))},
		},
		Conditions: []Condition{
			{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "dname"},
			{Left: 1, LeftAttr: "floor", Right: 2, RightAttr: "floor"},
		},
	}
	if err := net.AddRule(r); err != nil {
		t.Fatal(err)
	}
	_ = net.Insert("building", 1, tuple.New(value.Int(2), value.String_("red")))
	_ = net.Insert("building", 2, tuple.New(value.Int(3), value.String_("blue")))
	_ = net.Insert("dept", 1, deptT("shoe", 1, 2)) // floor 2 -> red zone
	_ = net.Insert("dept", 2, deptT("toy", 1, 3))  // floor 3 -> blue zone (filtered)
	if len(col.acts) != 0 {
		t.Fatal("premature activation")
	}
	_ = net.Insert("emp", 10, empT("ada", "shoe", 1))
	if len(col.acts) != 1 {
		t.Fatalf("activations = %d, want 1", len(col.acts))
	}
	if got := col.acts[0].IDs; !reflect.DeepEqual(got, []tuple.ID{10, 1, 1}) {
		t.Fatalf("activation ids = %v", got)
	}
	_ = net.Insert("emp", 11, empT("bob", "toy", 1)) // blue zone building filtered out
	if len(col.acts) != 1 {
		t.Fatalf("blue-zone emp activated: %d", len(col.acts))
	}
}

func TestSelfJoinAcrossSides(t *testing.T) {
	cat := testCatalog()
	col := &collector{}
	net := New(cat, pred.NewRegistry(), col.cb)
	// Same relation on both sides: well-paid and badly-paid employee in
	// the same department.
	r := &Rule{
		ID: 3,
		Sides: []Side{
			{Rel: "emp", Pred: pred.New(0, "emp",
				pred.IvClause("salary", interval.AtLeast(value.Int(100))))},
			{Rel: "emp", Pred: pred.New(0, "emp",
				pred.IvClause("salary", interval.Less(value.Int(50))))},
		},
		Conditions: []Condition{{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "dept"}},
	}
	if err := net.AddRule(r); err != nil {
		t.Fatal(err)
	}
	_ = net.Insert("emp", 1, empT("rich", "shoe", 200))
	_ = net.Insert("emp", 2, empT("poor", "shoe", 20))
	if len(col.acts) != 1 {
		t.Fatalf("activations = %d, want 1", len(col.acts))
	}
	if ids := col.acts[0].IDs; !reflect.DeepEqual(ids, []tuple.ID{1, 2}) {
		t.Fatalf("ids = %v", ids)
	}
	// A mid-salary tuple lands in neither memory.
	_ = net.Insert("emp", 3, empT("mid", "shoe", 75))
	if len(col.acts) != 1 {
		t.Fatal("mid-salary tuple activated")
	}
}

func TestRemoveRule(t *testing.T) {
	cat := testCatalog()
	col := &collector{}
	net := New(cat, pred.NewRegistry(), col.cb)
	if err := net.AddRule(binaryRule(1)); err != nil {
		t.Fatal(err)
	}
	if err := net.RemoveRule(1); err != nil {
		t.Fatal(err)
	}
	if err := net.RemoveRule(1); err == nil {
		t.Fatal("double remove accepted")
	}
	_ = net.Insert("dept", 1, deptT("shoe", 50000, 2))
	_ = net.Insert("emp", 10, empT("ada", "shoe", 60000))
	if len(col.acts) != 0 {
		t.Fatalf("removed rule fired: %+v", col.acts)
	}
	if net.SelectionIndex().Len() != 0 {
		t.Fatal("selection predicates leaked")
	}
}

func TestAddRuleErrors(t *testing.T) {
	cat := testCatalog()
	net := New(cat, pred.NewRegistry(), nil)
	ok := binaryRule(1)
	if err := net.AddRule(ok); err != nil {
		t.Fatal(err)
	}
	cases := []*Rule{
		ok, // duplicate id
		{ID: 2, Sides: []Side{{Rel: "emp"}}, Conditions: []Condition{{Left: 0, Right: 0}}},
		{ID: 3, Sides: []Side{{Rel: "emp"}, {Rel: "nosuch"}},
			Conditions: []Condition{{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "x"}}},
		{ID: 4, Sides: []Side{{Rel: "emp"}, {Rel: "dept"}}}, // no conditions
		{ID: 5, Sides: []Side{{Rel: "emp"}, {Rel: "dept"}},
			Conditions: []Condition{{Left: 0, LeftAttr: "nosuch", Right: 1, RightAttr: "dname"}}},
		{ID: 6, Sides: []Side{{Rel: "emp"}, {Rel: "dept"}},
			Conditions: []Condition{{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "nosuch"}}},
		{ID: 7, Sides: []Side{{Rel: "emp"}, {Rel: "dept"}},
			Conditions: []Condition{{Left: 0, LeftAttr: "salary", Right: 1, RightAttr: "dname"}}}, // type clash
		{ID: 8, Sides: []Side{{Rel: "emp"}, {Rel: "dept"}},
			Conditions: []Condition{{Left: 0, LeftAttr: "dept", Right: 5, RightAttr: "dname"}}}, // out of range
		{ID: 9, Sides: []Side{{Rel: "emp"}, {Rel: "dept"}},
			Conditions: []Condition{{Left: 0, LeftAttr: "dept", Right: 0, RightAttr: "dept"}}}, // self-side
		{ID: 10, Sides: []Side{
			{Rel: "emp", Pred: pred.New(0, "dept", pred.EqClause("dname", value.String_("x")))},
			{Rel: "dept"}},
			Conditions: []Condition{{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "dname"}}}, // pred/side rel mismatch
	}
	for _, r := range cases {
		if err := net.AddRule(r); err == nil {
			t.Errorf("AddRule(%d) accepted", r.ID)
		}
	}
}

// TestRandomizedAgainstNestedLoop cross-checks activations against a
// brute-force nested-loop join over the full history.
func TestRandomizedAgainstNestedLoop(t *testing.T) {
	cat := testCatalog()
	rng := rand.New(rand.NewSource(8))
	col := &collector{}
	net := New(cat, pred.NewRegistry(), col.cb)
	if err := net.AddRule(binaryRule(1)); err != nil {
		t.Fatal(err)
	}

	type row struct {
		id tuple.ID
		t  tuple.Tuple
	}
	var emps, depts []row
	depNames := []string{"a", "b", "c", "d"}
	nextID := tuple.ID(1)

	for op := 0; op < 400; op++ {
		if rng.Intn(2) == 0 {
			r := row{nextID, empT("e", depNames[rng.Intn(len(depNames))], int64(rng.Intn(100000)))}
			nextID++
			emps = append(emps, r)
			if err := net.Insert("emp", r.id, r.t); err != nil {
				t.Fatal(err)
			}
		} else {
			r := row{nextID, deptT(depNames[rng.Intn(len(depNames))], int64(rng.Intn(200000)), 1)}
			nextID++
			depts = append(depts, r)
			if err := net.Insert("dept", r.id, r.t); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Expected: every (emp, dept) pair satisfying all conditions fires
	// exactly once (when the later of the two was inserted).
	var want []string
	for _, e := range emps {
		if e.t[2].AsInt() <= 50000 {
			continue
		}
		for _, d := range depts {
			if d.t[1].AsInt() >= 100000 {
				continue
			}
			if e.t[1].AsString() != d.t[0].AsString() {
				continue
			}
			want = append(want, fmt.Sprintf("%d/%d", e.id, d.id))
		}
	}
	var got []string
	for _, a := range col.acts {
		got = append(got, fmt.Sprintf("%d/%d", a.IDs[0], a.IDs[1]))
	}
	sort.Strings(want)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("activations mismatch: got %d, want %d pairs", len(got), len(want))
	}
}

func TestMemorySizeUnknown(t *testing.T) {
	net := New(testCatalog(), pred.NewRegistry(), nil)
	if net.MemorySize(99, 0) != 0 || net.MemorySize(0, -1) != 0 {
		t.Fatal("MemorySize on unknown rule/side non-zero")
	}
}
