// Package join implements the second layer of the two-layer
// discrimination network the paper's conclusion describes: "The
// discrimination network described in this paper will be used as the
// first layer of a two-layer network which will test both the selection
// and the join conditions of rules. This two-layer approach is being
// implemented in the rule processing engine of the Ariel database
// system."
//
// The first layer is the IBS-tree predicate index (internal/core): each
// side of a join rule carries a single-relation selection predicate, and
// a new tuple is routed to the sides whose selection it satisfies. The
// second layer follows TREAT (Miranker 1987, cited by the paper): each
// rule side keeps an alpha memory of the tuples currently satisfying its
// selection, with hash indexes on its equi-join attributes; when a tuple
// enters a side, the network enumerates the combinations of tuples from
// the other sides that satisfy every join condition and reports one
// activation per combination. No beta memories are kept — joins are
// recomputed per insertion, TREAT's defining trade-off.
package join

import (
	"fmt"

	"predmatch/internal/core"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// RuleID identifies a join rule.
type RuleID int64

// Side is one relation binding of a join rule: tuples of Rel satisfying
// Pred populate the side's alpha memory. Pred may be nil (every tuple of
// Rel qualifies); when non-nil its Rel must equal the side's.
type Side struct {
	Rel  string
	Pred *pred.Predicate
}

// Condition is an equi-join between attributes of two sides:
// sides[Left].LeftAttr == sides[Right].RightAttr.
type Condition struct {
	Left      int
	LeftAttr  string
	Right     int
	RightAttr string
}

// Rule is a multi-relation rule condition: a conjunction of per-side
// selections plus equi-join conditions.
type Rule struct {
	ID         RuleID
	Sides      []Side
	Conditions []Condition
}

// Activation reports one satisfied rule instantiation: Tuples[i] is the
// tuple bound to side i (with its storage ID in IDs[i]).
type Activation struct {
	Rule   RuleID
	IDs    []tuple.ID
	Tuples []tuple.Tuple
}

// sideKey addresses one side of one rule.
type sideKey struct {
	rule RuleID
	side int
}

// memory is a side's alpha memory.
type memory struct {
	rows map[tuple.ID]tuple.Tuple
	// hash indexes the memory on each join attribute position used by
	// any condition touching this side: attrPos -> value -> tuple ids.
	hash map[int]map[value.Value]map[tuple.ID]struct{}
}

func newMemory(joinAttrs []int) *memory {
	m := &memory{
		rows: make(map[tuple.ID]tuple.Tuple),
		hash: make(map[int]map[value.Value]map[tuple.ID]struct{}, len(joinAttrs)),
	}
	for _, pos := range joinAttrs {
		m.hash[pos] = make(map[value.Value]map[tuple.ID]struct{})
	}
	return m
}

func (m *memory) add(id tuple.ID, t tuple.Tuple) {
	m.rows[id] = t
	for pos, idx := range m.hash {
		v := t[pos]
		set, ok := idx[v]
		if !ok {
			set = make(map[tuple.ID]struct{}, 1)
			idx[v] = set
		}
		set[id] = struct{}{}
	}
}

func (m *memory) remove(id tuple.ID) {
	t, ok := m.rows[id]
	if !ok {
		return
	}
	delete(m.rows, id)
	for pos, idx := range m.hash {
		v := t[pos]
		if set, ok := idx[v]; ok {
			delete(set, id)
			if len(set) == 0 {
				delete(idx, v)
			}
		}
	}
}

// compiledRule resolves a rule against the catalog.
type compiledRule struct {
	rule *Rule
	// mems[i] is side i's alpha memory.
	mems []*memory
	// conds[i] lists, for side i, the conditions touching it, with the
	// local and remote attribute positions resolved.
	conds [][]resolvedCond
}

// resolvedCond is a condition seen from one side.
type resolvedCond struct {
	localPos int
	other    int
	otherPos int
}

// Network is the two-layer discrimination network.
type Network struct {
	catalog *schema.Catalog
	funcs   *pred.Registry
	sel     *core.Index // layer 1: selection predicates
	rules   map[RuleID]*compiledRule
	// predSide maps a layer-1 predicate id to the rule side it feeds.
	predSide map[pred.ID]sideKey
	nextPred pred.ID
	// relSides lists the sides bound to each relation, for deletion.
	relSides map[string][]sideKey
	onAct    func(Activation)
	scratch  []pred.ID
}

// New builds an empty network; onActivate receives every rule
// activation (it must not mutate the network reentrantly).
func New(catalog *schema.Catalog, funcs *pred.Registry, onActivate func(Activation), opts ...core.Option) *Network {
	return &Network{
		catalog:  catalog,
		funcs:    funcs,
		sel:      core.New(catalog, funcs, opts...),
		rules:    make(map[RuleID]*compiledRule),
		predSide: make(map[pred.ID]sideKey),
		nextPred: 1,
		relSides: make(map[string][]sideKey),
		onAct:    onActivate,
	}
}

// SelectionIndex exposes the layer-1 predicate index (for statistics).
func (n *Network) SelectionIndex() *core.Index { return n.sel }

// AddRule validates, compiles and registers a join rule.
func (n *Network) AddRule(r *Rule) error {
	if _, dup := n.rules[r.ID]; dup {
		return fmt.Errorf("join: duplicate rule id %d", r.ID)
	}
	if len(r.Sides) < 2 {
		return fmt.Errorf("join: rule %d needs at least two sides (use internal/core for single-relation rules)", r.ID)
	}
	// Resolve sides and conditions.
	rels := make([]*schema.Relation, len(r.Sides))
	for i, s := range r.Sides {
		rel, ok := n.catalog.Get(s.Rel)
		if !ok {
			return fmt.Errorf("join: rule %d side %d: unknown relation %q", r.ID, i, s.Rel)
		}
		rels[i] = rel
		if s.Pred != nil && s.Pred.Rel != s.Rel {
			return fmt.Errorf("join: rule %d side %d: predicate on %q bound to relation %q",
				r.ID, i, s.Pred.Rel, s.Rel)
		}
	}
	if len(r.Conditions) == 0 {
		return fmt.Errorf("join: rule %d has no join conditions (cross products are not supported)", r.ID)
	}
	cr := &compiledRule{
		rule:  r,
		conds: make([][]resolvedCond, len(r.Sides)),
	}
	joinAttrs := make([][]int, len(r.Sides))
	for _, c := range r.Conditions {
		if c.Left < 0 || c.Left >= len(r.Sides) || c.Right < 0 || c.Right >= len(r.Sides) {
			return fmt.Errorf("join: rule %d condition references side out of range", r.ID)
		}
		if c.Left == c.Right {
			return fmt.Errorf("join: rule %d has a self-join condition on one side; fold it into the side's selection", r.ID)
		}
		lp, ok := rels[c.Left].AttrIndex(c.LeftAttr)
		if !ok {
			return fmt.Errorf("join: rule %d: relation %s has no attribute %s", r.ID, r.Sides[c.Left].Rel, c.LeftAttr)
		}
		rp, ok := rels[c.Right].AttrIndex(c.RightAttr)
		if !ok {
			return fmt.Errorf("join: rule %d: relation %s has no attribute %s", r.ID, r.Sides[c.Right].Rel, c.RightAttr)
		}
		lk, _ := rels[c.Left].AttrType(c.LeftAttr)
		rk, _ := rels[c.Right].AttrType(c.RightAttr)
		if lk != rk {
			return fmt.Errorf("join: rule %d joins %s attribute with %s attribute", r.ID, lk, rk)
		}
		cr.conds[c.Left] = append(cr.conds[c.Left], resolvedCond{localPos: lp, other: c.Right, otherPos: rp})
		cr.conds[c.Right] = append(cr.conds[c.Right], resolvedCond{localPos: rp, other: c.Left, otherPos: lp})
		joinAttrs[c.Left] = append(joinAttrs[c.Left], lp)
		joinAttrs[c.Right] = append(joinAttrs[c.Right], rp)
	}

	// Register layer-1 selection predicates (one per side). A nil side
	// predicate becomes an always-true predicate on the relation.
	var registered []pred.ID
	rollback := func() {
		for _, id := range registered {
			_ = n.sel.Remove(id)
			delete(n.predSide, id)
		}
	}
	for i, s := range r.Sides {
		var p *pred.Predicate
		if s.Pred != nil {
			clauses := make([]pred.Clause, len(s.Pred.Clauses))
			copy(clauses, s.Pred.Clauses)
			p = pred.New(n.nextPred, s.Rel, clauses...)
		} else {
			p = pred.New(n.nextPred, s.Rel)
		}
		if err := n.sel.Add(p); err != nil {
			rollback()
			return fmt.Errorf("join: rule %d side %d selection: %w", r.ID, i, err)
		}
		n.predSide[p.ID] = sideKey{rule: r.ID, side: i}
		registered = append(registered, p.ID)
		n.nextPred++
		cr.mems = append(cr.mems, newMemory(joinAttrs[i]))
		n.relSides[s.Rel] = append(n.relSides[s.Rel], sideKey{rule: r.ID, side: i})
	}
	n.rules[r.ID] = cr
	return nil
}

// RemoveRule unregisters a rule and drops its memories.
func (n *Network) RemoveRule(id RuleID) error {
	cr, ok := n.rules[id]
	if !ok {
		return fmt.Errorf("join: unknown rule id %d", id)
	}
	delete(n.rules, id)
	for pid, sk := range n.predSide {
		if sk.rule == id {
			if err := n.sel.Remove(pid); err != nil {
				return err
			}
			delete(n.predSide, pid)
		}
	}
	for i, s := range cr.rule.Sides {
		list := n.relSides[s.Rel]
		for j, sk := range list {
			if sk.rule == id && sk.side == i {
				n.relSides[s.Rel] = append(list[:j], list[j+1:]...)
				break
			}
		}
	}
	return nil
}

// Insert routes a stored tuple through both layers: the selection layer
// finds the rule sides it satisfies; each satisfied side's memory is
// updated and the join layer enumerates newly satisfied combinations,
// invoking the activation callback for each.
func (n *Network) Insert(rel string, id tuple.ID, t tuple.Tuple) error {
	matched, err := n.sel.Match(rel, t, n.scratch[:0])
	n.scratch = matched
	if err != nil {
		return err
	}
	for _, pid := range matched {
		sk := n.predSide[pid]
		cr := n.rules[sk.rule]
		cr.mems[sk.side].add(id, t)
		n.enumerate(cr, sk.side, id, t)
	}
	return nil
}

// Seed adds an already-stored tuple to the alpha memories of one rule
// without producing activations — used to backfill a newly defined rule
// from existing data so that future events join against the full
// database state. (Whether pre-existing combinations should fire at rule
// definition time is a policy choice; Ariel treats rules as reacting to
// subsequent events, which Seed preserves.)
func (n *Network) Seed(rule RuleID, rel string, id tuple.ID, t tuple.Tuple) error {
	cr, ok := n.rules[rule]
	if !ok {
		return fmt.Errorf("join: unknown rule id %d", rule)
	}
	matched, err := n.sel.Match(rel, t, nil)
	if err != nil {
		return err
	}
	for _, pid := range matched {
		if sk := n.predSide[pid]; sk.rule == rule {
			cr.mems[sk.side].add(id, t)
		}
	}
	return nil
}

// Delete removes a stored tuple from every memory holding it. No
// deactivations are reported (TREAT semantics for monotonic actions).
func (n *Network) Delete(rel string, id tuple.ID) {
	for _, sk := range n.relSides[rel] {
		n.rules[sk.rule].mems[sk.side].remove(id)
	}
}

// Update is Delete followed by Insert with the new image.
func (n *Network) Update(rel string, id tuple.ID, t tuple.Tuple) error {
	n.Delete(rel, id)
	return n.Insert(rel, id, t)
}

// MemorySize reports the alpha-memory population of one rule side.
func (n *Network) MemorySize(rule RuleID, side int) int {
	cr, ok := n.rules[rule]
	if !ok || side < 0 || side >= len(cr.mems) {
		return 0
	}
	return len(cr.mems[side].rows)
}

// enumerate finds all combinations completing a new tuple on side
// `seed`. Bindings are extended side by side; each unbound side is
// probed through its hash index on a condition against an already-bound
// side when one exists, else scanned.
func (n *Network) enumerate(cr *compiledRule, seed int, seedID tuple.ID, seedT tuple.Tuple) {
	k := len(cr.rule.Sides)
	ids := make([]tuple.ID, k)
	tuples := make([]tuple.Tuple, k)
	bound := make([]bool, k)
	ids[seed], tuples[seed], bound[seed] = seedID, seedT, true

	// Order the remaining sides so that each is (when possible) probed
	// via a condition touching an already-bound side.
	order := make([]int, 0, k-1)
	added := make([]bool, k)
	added[seed] = true
	for len(order) < k-1 {
		progressed := false
		for s := 0; s < k; s++ {
			if added[s] {
				continue
			}
			for _, rc := range cr.conds[s] {
				if added[rc.other] {
					order = append(order, s)
					added[s] = true
					progressed = true
					break
				}
			}
		}
		if !progressed {
			// Disconnected component (unreachable: AddRule requires at
			// least one condition per rule, but a rule could have
			// disconnected side groups) — bind by scan.
			for s := 0; s < k; s++ {
				if !added[s] {
					order = append(order, s)
					added[s] = true
					break
				}
			}
		}
	}

	var extend func(step int)
	extend = func(step int) {
		if step == len(order) {
			act := Activation{
				Rule:   cr.rule.ID,
				IDs:    append([]tuple.ID(nil), ids...),
				Tuples: make([]tuple.Tuple, k),
			}
			copy(act.Tuples, tuples)
			if n.onAct != nil {
				n.onAct(act)
			}
			return
		}
		s := order[step]
		mem := cr.mems[s]

		// Choose a probe: a condition between s and a bound side.
		var probe *resolvedCond
		for i := range cr.conds[s] {
			if bound[cr.conds[s][i].other] {
				probe = &cr.conds[s][i]
				break
			}
		}

		tryCandidate := func(cid tuple.ID, ct tuple.Tuple) {
			// Verify every condition between s and bound sides.
			for _, rc := range cr.conds[s] {
				if !bound[rc.other] {
					continue
				}
				if !value.Equal(ct[rc.localPos], tuples[rc.other][rc.otherPos]) {
					return
				}
			}
			ids[s], tuples[s], bound[s] = cid, ct, true
			extend(step + 1)
			bound[s] = false
		}

		if probe != nil {
			want := tuples[probe.other][probe.otherPos]
			for cid := range mem.hash[probe.localPos][want] {
				tryCandidate(cid, mem.rows[cid])
			}
			return
		}
		for cid, ct := range mem.rows {
			tryCandidate(cid, ct)
		}
	}
	extend(0)
}
