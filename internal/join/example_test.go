package join_test

import (
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/join"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Example wires a two-relation rule — emp.salary > 50000 AND
// emp.dept = dept.dname AND dept.budget < 100000 — through the
// two-layer network and feeds it tuples.
func Example() {
	cat := schema.NewCatalog()
	_ = cat.Add(schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "dept", Type: value.KindString},
		schema.Attribute{Name: "salary", Type: value.KindInt}))
	_ = cat.Add(schema.MustRelation("dept",
		schema.Attribute{Name: "dname", Type: value.KindString},
		schema.Attribute{Name: "budget", Type: value.KindInt}))

	net := join.New(cat, pred.NewRegistry(), func(a join.Activation) {
		fmt.Printf("%v joins %v\n", a.Tuples[0][0], a.Tuples[1][0])
	})
	_ = net.AddRule(&join.Rule{
		ID: 1,
		Sides: []join.Side{
			{Rel: "emp", Pred: pred.New(0, "emp",
				pred.IvClause("salary", interval.Greater(value.Int(50000))))},
			{Rel: "dept", Pred: pred.New(0, "dept",
				pred.IvClause("budget", interval.Less(value.Int(100000))))},
		},
		Conditions: []join.Condition{{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "dname"}},
	})

	_ = net.Insert("dept", 1, tuple.New(value.String_("shoe"), value.Int(60000)))
	_ = net.Insert("emp", 2, tuple.New(value.String_("ada"), value.String_("shoe"), value.Int(80000)))
	_ = net.Insert("emp", 3, tuple.New(value.String_("bob"), value.String_("shoe"), value.Int(10000)))
	// Output: 'ada' joins 'shoe'
}
