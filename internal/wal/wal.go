// Package wal is predmatchd's durability subsystem: a segmented,
// checksummed write-ahead log of state-changing operations plus
// catalog/rule/relation snapshots, turning the in-memory rule service
// into something that survives a crash. The paper stores its predicates
// in a PREDICATES catalog relation precisely because a database rule
// system must outlive the process (Section 2); this package is that
// catalog's modern shape.
//
// # Log format
//
// A log is a directory of segment files named wal-<firstseq>.seg. Each
// segment is a sequence of records framed as
//
//	| length uint32 LE | crc32c(payload) uint32 LE | payload |
//
// where payload is the JSON encoding of a Record. Sequence numbers are
// assigned at append time, start at 1, and are contiguous across
// segments. A torn or bit-flipped record fails its CRC (or its length
// prefix runs past the file) and recovery treats it as the end of the
// log: everything before it is replayed, the invalid suffix is
// truncated, and the daemon resumes appending — the crash contract is
// "no acked record lost, no torn record applied", not "no byte lost".
//
// # Sync policies
//
// SyncAlways makes Commit block until an fsync covers the record; the
// fsync is shared by every record appended while the previous fsync was
// in flight (group commit), so concurrent mutators pay one disk flush
// between them. SyncInterval acks immediately and fsyncs on a timer;
// SyncOff never fsyncs (the OS still sees every write immediately, so a
// process kill loses nothing — only an OS crash can).
//
// # Snapshots
//
// A snapshot (snap-<seq>.ckpt) is one framed record holding the whole
// engine state — schemas, secondary-index attrs, relation contents,
// rule sources, direct predicates — as of log sequence <seq>. After a
// snapshot is durable, segments whose records it covers are deleted.
// Recovery loads the newest readable snapshot and replays the log tail
// after it; an unreadable (torn) snapshot falls back to the previous
// one.
package wal

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	"predmatch/internal/obs"
)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy string

const (
	// SyncAlways fsyncs before Commit returns, batching concurrent
	// committers into shared fsyncs (group commit). Survives power loss.
	SyncAlways SyncPolicy = "always"
	// SyncInterval acks immediately and fsyncs on a timer; a crash can
	// lose up to SyncEvery of acked records.
	SyncInterval SyncPolicy = "interval"
	// SyncOff never fsyncs. Writes still reach the OS on every append,
	// so only an OS/power failure loses data, not a process kill.
	SyncOff SyncPolicy = "off"
)

// ParseSyncPolicy validates a policy name from a flag.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch p := SyncPolicy(s); p {
	case SyncAlways, SyncInterval, SyncOff:
		return p, nil
	default:
		return "", fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
	}
}

// Defaults for the zero Options values.
const (
	DefaultSegmentBytes = 64 << 20
	DefaultSyncEvery    = 100 * time.Millisecond
)

// Options configures a Log. Zero values pick the documented defaults.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// SegmentBytes rotates the active segment when it would exceed this
	// size (default 64 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the fsync period under SyncInterval (default 100ms).
	SyncEvery time.Duration
	// Registry receives the WAL metric families (fsync latency,
	// record/byte counters, snapshot age); nil leaves the log
	// uninstrumented.
	Registry *obs.Registry
	// Logger receives recovery and snapshot lifecycle events (default:
	// discard).
	Logger *slog.Logger
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Sync == "" {
		o.Sync = SyncAlways
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard,
			&slog.HandlerOptions{Level: slog.Level(127)}))
	}
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")
