// Checkpoint snapshots: the whole engine state as of one log sequence,
// serialized to snap-<seq>.ckpt with the same length+CRC32C framing as
// log records. A snapshot bounds recovery time and lets the covered
// segments be deleted.

package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"predmatch/internal/wire"
)

// snapshotVersion guards the on-disk schema; a reader refuses a version
// it does not know instead of misinterpreting the payload.
const snapshotVersion = 1

// SnapRow is one stored tuple: its ID and the wire literal form of its
// values.
type SnapRow struct {
	ID    int64 `json:"id"`
	Tuple []any `json:"tuple"`
}

// SnapRelation is one relation's schema, secondary indexes, and
// contents.
type SnapRelation struct {
	Name    string      `json:"name"`
	Attrs   []wire.Attr `json:"attrs"`
	Indexes []string    `json:"indexes,omitempty"`
	NextID  int64       `json:"next_id"`
	Rows    []SnapRow   `json:"rows"`
}

// SnapPred is one direct predicate with its server-assigned ID.
type SnapPred struct {
	ID   int64          `json:"id"`
	Pred wire.Predicate `json:"pred"`
}

// Snapshot is the full durable state at log sequence Seq: everything
// recovery needs to rebuild the catalog, relations, rule network, and
// direct-predicate registry before replaying the log tail.
type Snapshot struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	// TakenUnixNano records when the snapshot was captured (0 if the
	// writer predates the field).
	TakenUnixNano int64          `json:"taken_unix_nano,omitempty"`
	Relations     []SnapRelation `json:"relations"`
	// Rules holds the rule source texts; the engine re-parses them on
	// load. Sorted by rule name, which is safe because rule semantics are
	// order-insensitive (priority lives in the source text).
	Rules []string `json:"rules,omitempty"`
	// Preds holds direct predicates (the wire addpred registry) with
	// their IDs, so subscriber predicate IDs stay stable across restart.
	Preds []SnapPred `json:"preds,omitempty"`
	// NextPredID is the server's direct-predicate ID allocator cursor.
	NextPredID int64 `json:"next_pred_id,omitempty"`
}

// WriteSnapshot persists snap as snap-<snap.Seq>.ckpt in the log
// directory: written to a temp file, fsynced, renamed into place, and
// the directory fsynced — so a crash leaves either the old snapshot set
// or the complete new one, never a half-written checkpoint under the
// real name. It then records the snapshot for the age gauge. The caller
// prunes separately (Prune) once the snapshot is durable.
func (l *Log) WriteSnapshot(snap *Snapshot) (string, int64, error) {
	t0 := time.Now()
	snap.Version = snapshotVersion
	if snap.TakenUnixNano == 0 {
		snap.TakenUnixNano = t0.UnixNano()
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return "", 0, fmt.Errorf("wal: encode snapshot: %w", err)
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))

	final := filepath.Join(l.opt.Dir, snapshotName(snap.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", 0, err
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err == nil {
		err = syncDir(l.opt.Dir)
	}
	if err != nil {
		os.Remove(tmp)
		return "", 0, fmt.Errorf("wal: write snapshot: %w", err)
	}
	l.noteSnapshot(snap.Seq, t0)
	if l.met != nil {
		l.met.snapshots.Inc()
		l.met.snapshotSecs.ObserveSince(t0)
	}
	l.opt.Logger.Info("wal snapshot written",
		"seq", snap.Seq, "bytes", len(payload)+headerBytes,
		"elapsed", time.Since(t0))
	return final, int64(len(payload) + headerBytes), nil
}

// ReadSnapshot loads and validates one checkpoint file. Any framing or
// checksum failure is an error; callers (recovery, predmatch restore)
// decide whether to fall back to an older snapshot.
func ReadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerBytes {
		return nil, fmt.Errorf("wal: snapshot %s: short header", filepath.Base(path))
	}
	length := binary.LittleEndian.Uint32(raw[0:4])
	sum := binary.LittleEndian.Uint32(raw[4:8])
	if int64(length) != int64(len(raw)-headerBytes) {
		return nil, fmt.Errorf("wal: snapshot %s: length %d does not match file", filepath.Base(path), length)
	}
	payload := raw[headerBytes:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("wal: snapshot %s: checksum mismatch", filepath.Base(path))
	}
	snap := new(Snapshot)
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.UseNumber() // tuple ints must stay json.Number, not float64
	if err := dec.Decode(snap); err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("wal: snapshot %s: unsupported version %d", filepath.Base(path), snap.Version)
	}
	return snap, nil
}

// InstallSnapshot seeds a fresh data directory from a checkpoint file
// (the `predmatch restore` operation): validate the snapshot, refuse a
// directory that already holds durable state (restoring over a live
// history would silently discard it), then copy the file in under its
// canonical name with full fsync discipline. A daemon recovering the
// directory afterwards starts from the snapshot with an empty log tail
// and appends resuming at Seq+1.
func InstallSnapshot(dir, srcPath string) (*Snapshot, error) {
	snap, err := ReadSnapshot(srcPath)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 || len(snaps) > 0 {
		return nil, fmt.Errorf("wal: %s already holds durable state (%d segments, %d snapshots); refusing to restore over it", dir, len(segs), len(snaps))
	}
	raw, err := os.ReadFile(srcPath)
	if err != nil {
		return nil, err
	}
	final := filepath.Join(dir, snapshotName(snap.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err = f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: install snapshot: %w", err)
	}
	return snap, nil
}

// listSnapshots returns the snapshot sequences present in dir, newest
// first.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}
