package wal

import (
	"errors"
	"testing"
	"time"
)

// drainTail collects n records from the tail, failing the test on any
// error or a stall past the deadline.
func drainTail(t *testing.T, tl *Tail, n int) []*Record {
	t.Helper()
	type result struct {
		rec *Record
		err error
	}
	out := make([]*Record, 0, n)
	for len(out) < n {
		ch := make(chan result, 1)
		go func() {
			rec, err := tl.Next(nil)
			ch <- result{rec, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("Next after %d records: %v", len(out), r.err)
			}
			out = append(out, r.rec)
		case <-time.After(5 * time.Second):
			t.Fatalf("Next stalled after %d records", len(out))
		}
	}
	return out
}

func TestTailStreamsExistingAndLive(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	defer l.Close()
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i), "e", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	tl, err := l.OpenTail(1)
	if err != nil {
		t.Fatalf("OpenTail: %v", err)
	}
	defer tl.Close()
	recs := drainTail(t, tl, 5)
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, rec.Seq)
		}
	}

	// The tail is caught up; a Next must block until a live append.
	got := make(chan *Record, 1)
	errc := make(chan error, 1)
	go func() {
		rec, err := tl.Next(nil)
		if err != nil {
			errc <- err
			return
		}
		got <- rec
	}()
	select {
	case rec := <-got:
		t.Fatalf("Next returned %+v before any append", rec)
	case err := <-errc:
		t.Fatalf("Next: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := l.Append(mutateRecord("emp", 6, "e", 6)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case rec := <-got:
		if rec.Seq != 6 {
			t.Fatalf("live record seq %d, want 6", rec.Seq)
		}
	case err := <-errc:
		t.Fatalf("Next: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not observe the live append")
	}
}

func TestTailResumeMidSegmentAndRotation(t *testing.T) {
	opt := testOptions(t, SyncOff)
	opt.SegmentBytes = 256 // force rotations every few records
	l := openEmpty(t, opt)
	defer l.Close()
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i), "employee-name-padding", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", l.Segments())
	}

	// Resume from the middle: the tail must discard the prefix of its
	// starting segment and then cross every rotation boundary.
	tl, err := l.OpenTail(17)
	if err != nil {
		t.Fatalf("OpenTail(17): %v", err)
	}
	defer tl.Close()
	recs := drainTail(t, tl, 24)
	for i, rec := range recs {
		if want := uint64(17 + i); rec.Seq != want {
			t.Fatalf("record %d: seq %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestTailStopAndClose(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	tl, err := l.OpenTail(1)
	if err != nil {
		t.Fatalf("OpenTail: %v", err)
	}
	defer tl.Close()

	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := tl.Next(stop)
		errc <- err
	}()
	close(stop)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Next after stop: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next ignored stop")
	}

	// A blocked Next must also observe the log closing.
	go func() {
		_, err := tl.Next(nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Next after log close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next ignored log close")
	}
}

func TestTailTruncatedByPrune(t *testing.T) {
	opt := testOptions(t, SyncOff)
	opt.SegmentBytes = 256
	l := openEmpty(t, opt)
	defer l.Close()
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i), "employee-name-padding", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, _, err := l.WriteSnapshot(&Snapshot{Seq: 30}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l.Prune(30); err != nil {
		t.Fatalf("Prune: %v", err)
	}

	// Sequence 1 is gone; the tail must say so rather than stream a gap.
	if _, err := l.OpenTail(1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("OpenTail(1) after prune: %v, want ErrTruncated", err)
	}
	// But everything after the snapshot still streams.
	tl, err := l.OpenTail(31)
	if err != nil {
		t.Fatalf("OpenTail(31): %v", err)
	}
	defer tl.Close()
	recs := drainTail(t, tl, 10)
	if recs[0].Seq != 31 || recs[9].Seq != 40 {
		t.Fatalf("resumed range [%d, %d], want [31, 40]", recs[0].Seq, recs[9].Seq)
	}

	// Past-the-end resume is a split brain, not a resume.
	if _, err := l.OpenTail(42); err == nil {
		t.Fatal("OpenTail past the log end succeeded")
	}
}

func TestAppendExact(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	rec := mutateRecord("emp", 1, "e", 1)
	rec.Seq = 3
	if _, err := l.AppendExact(rec); err == nil {
		t.Fatal("AppendExact with a gap succeeded")
	}
	rec.Seq = 1
	seq, err := l.AppendExact(rec)
	if err != nil || seq != 1 {
		t.Fatalf("AppendExact(1) = %d, %v", seq, err)
	}
	rec2 := mutateRecord("emp", 2, "e", 2)
	rec2.Seq = 2
	if _, err := l.AppendExact(rec2); err != nil {
		t.Fatalf("AppendExact(2): %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, info, recs := replayAll(t, opt)
	defer l2.Close()
	if info.LastSeq != 2 || len(recs) != 2 {
		t.Fatalf("recovery after AppendExact: info=%+v records=%d", info, len(recs))
	}
}

func TestAdvanceEmptyLog(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	if err := l.Advance(100); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := l.LastSeq(); got != 100 {
		t.Fatalf("LastSeq after Advance = %d", got)
	}
	// Appends must resume in the leader's sequence space.
	seq, err := l.Append(mutateRecord("emp", 1, "e", 1))
	if err != nil || seq != 101 {
		t.Fatalf("Append after Advance = %d, %v", seq, err)
	}
	// A second Advance must refuse: the log has history now.
	if err := l.Advance(200); err == nil {
		t.Fatal("Advance over existing records succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recovery needs the snapshot that justifies the jump, exactly as a
	// follower bootstrap writes one before advancing.
	if _, _, err := Recover(opt, Handler{}); err == nil {
		t.Fatal("Recover with a gap and no snapshot succeeded")
	}
}

func TestAdvanceWithSnapshotRecovers(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	if _, _, err := l.WriteSnapshot(&Snapshot{Seq: 50}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l.Advance(50); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if _, err := l.Append(mutateRecord("emp", 1, "e", 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var snapSeq uint64
	l2, info, err := Recover(opt, Handler{
		LoadSnapshot: func(s *Snapshot) error {
			snapSeq = s.Seq
			return nil
		},
		Apply: func(*Record) error { return nil },
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer l2.Close()
	if snapSeq != 50 || info.LastSeq != 51 || info.RecordsReplayed != 1 {
		t.Fatalf("recovery: snap=%d info=%+v", snapSeq, info)
	}
}
