package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"predmatch/internal/obs"
)

func testOptions(t *testing.T, sync SyncPolicy) Options {
	t.Helper()
	return Options{Dir: t.TempDir(), Sync: sync}
}

// openEmpty recovers an empty directory into a fresh log.
func openEmpty(t *testing.T, opt Options) *Log {
	t.Helper()
	l, info, err := Recover(opt, Handler{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.LastSeq != 0 || info.RecordsReplayed != 0 {
		t.Fatalf("fresh dir recovered state: %+v", info)
	}
	return l
}

func mutateRecord(rel string, id int64, vals ...any) *Record {
	return &Record{Kind: KindMutate, Events: []Event{{Rel: rel, Op: "insert", ID: id, Tuple: vals}}}
}

// replayAll recovers opt.Dir collecting every replayed record.
func replayAll(t *testing.T, opt Options) (*Log, RecoveryInfo, []*Record) {
	t.Helper()
	var recs []*Record
	l, info, err := Recover(opt, Handler{Apply: func(r *Record) error {
		cp := *r
		recs = append(recs, &cp)
		return nil
	}})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return l, info, recs
}

func TestAppendCommitReplay(t *testing.T) {
	opt := testOptions(t, SyncAlways)
	l := openEmpty(t, opt)
	for i := 1; i <= 20; i++ {
		seq, err := l.Append(mutateRecord("emp", int64(i), "e", i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append %d: seq %d", i, seq)
		}
		if err := l.Commit(seq); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	if got := l.DurableSeq(); got != 20 {
		t.Fatalf("DurableSeq = %d, want 20", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append(&Record{Kind: KindRule}); err != ErrClosed {
		t.Fatalf("Append after Close: err = %v, want ErrClosed", err)
	}

	l2, info, recs := replayAll(t, opt)
	defer l2.Close()
	if info.LastSeq != 20 || info.RecordsReplayed != 20 || info.TruncatedBytes != 0 {
		t.Fatalf("recovery info: %+v", info)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Kind != KindMutate {
			t.Fatalf("record %d: seq=%d kind=%q", i, rec.Seq, rec.Kind)
		}
		if rec.Events[0].ID != int64(i+1) {
			t.Fatalf("record %d: event id %d", i, rec.Events[0].ID)
		}
	}
	// Appends resume after the recovered tail.
	seq, err := l2.Append(&Record{Kind: KindRule, Source: "rule r ..."})
	if err != nil || seq != 21 {
		t.Fatalf("post-recovery Append: seq=%d err=%v", seq, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(string(policy), func(t *testing.T) {
			opt := testOptions(t, policy)
			l := openEmpty(t, opt)
			for i := 0; i < 5; i++ {
				seq, err := l.Append(mutateRecord("r", int64(i)))
				if err != nil {
					t.Fatalf("Append: %v", err)
				}
				if err := l.Commit(seq); err != nil {
					t.Fatalf("Commit: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l2, info, _ := replayAll(t, opt)
			l2.Close()
			if info.LastSeq != 5 {
				t.Fatalf("%s: recovered LastSeq = %d, want 5", policy, info.LastSeq)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, ok := range []string{"always", "interval", "off"} {
		if _, err := ParseSyncPolicy(ok); err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	opt := testOptions(t, SyncAlways)
	opt.Registry = obs.NewRegistry()
	l := openEmpty(t, opt)
	defer l.Close()

	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := l.Append(mutateRecord("emp", int64(g*each+i)))
				if err == nil {
					err = l.Commit(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	if got := l.LastSeq(); got != goroutines*each {
		t.Fatalf("LastSeq = %d, want %d", got, goroutines*each)
	}
	if got := l.DurableSeq(); got != goroutines*each {
		t.Fatalf("DurableSeq = %d, want %d", got, goroutines*each)
	}
}

func TestSegmentRotationAndRecovery(t *testing.T) {
	opt := testOptions(t, SyncOff)
	opt.SegmentBytes = 256 // force frequent rotation
	l := openEmpty(t, opt)
	const n = 50
	for i := 1; i <= n; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i), "padpadpadpad", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("Segments = %d, want several at 256-byte rotation", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	opt2 := opt
	l2, info, recs := replayAll(t, opt2)
	defer l2.Close()
	if info.LastSeq != n || len(recs) != n {
		t.Fatalf("recovered %d records, LastSeq %d; want %d", len(recs), info.LastSeq, n)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("replay out of order at %d: seq %d", i, rec.Seq)
		}
	}
}

// corruptTail flips a byte inside the last len-th record region of the
// last segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	return filepath.Join(dir, segmentName(segs[len(segs)-1]))
}

func TestTornTailTruncated(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Chop the last record mid-payload: a torn tail.
	path := lastSegment(t, opt.Dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, info, recs := replayAll(t, opt)
	if info.LastSeq != 9 || len(recs) != 9 {
		t.Fatalf("after torn tail: LastSeq=%d replayed=%d, want 9", info.LastSeq, len(recs))
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("TruncatedBytes = 0, want the torn record's size")
	}
	// The log must keep working: append record 10 and recover again.
	if seq, err := l2.Append(mutateRecord("emp", 99)); err != nil || seq != 10 {
		t.Fatalf("Append after truncation: seq=%d err=%v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, info3, _ := replayAll(t, opt)
	l3.Close()
	if info3.LastSeq != 10 || info3.TruncatedBytes != 0 {
		t.Fatalf("second recovery: %+v", info3)
	}
}

func TestBitFlipStopsReplayAtTail(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	path := lastSegment(t, opt.Dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the final record: its CRC fails, replay
	// stops before it, and the tail (header onward) is truncated.
	// Find the final record's start by walking frames.
	off := 0
	for {
		length := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		if off+headerBytes+length == len(raw) {
			break
		}
		off += headerBytes + length
	}
	raw[off+headerBytes] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, info, recs := replayAll(t, opt)
	defer l2.Close()
	if len(recs) != 4 || info.LastSeq != 4 {
		t.Fatalf("bit flip: replayed %d, LastSeq %d; want 4", len(recs), info.LastSeq)
	}
	if info.TruncatedBytes != int64(len(raw)-off) {
		t.Fatalf("TruncatedBytes = %d, want %d", info.TruncatedBytes, len(raw)-off)
	}
}

func TestInteriorCorruptionIsFatal(t *testing.T) {
	opt := testOptions(t, SyncOff)
	opt.SegmentBytes = 128
	l := openEmpty(t, opt)
	for i := 1; i <= 30; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i), "padding-padding")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(opt.Dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (%v)", len(segs), err)
	}
	// Corrupt the first (interior) segment's first record payload.
	path := filepath.Join(opt.Dir, segmentName(segs[0]))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerBytes] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(opt, Handler{}); err == nil {
		t.Fatal("Recover tolerated interior corruption")
	}
}

func TestSequenceGapIsFatal(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Hand-append a frame with a gapped sequence number.
	path := lastSegment(t, opt.Dir)
	frame, err := appendFrame(nil, &Record{Seq: 9, Kind: KindRule})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame)
	f.Close()
	if _, _, err := Recover(opt, Handler{}); err == nil {
		t.Fatal("Recover tolerated a sequence gap")
	}
}

func TestEmptyTailSegmentRemoved(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	if _, err := l.Append(mutateRecord("emp", 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Recover (which opens a fresh empty active segment) and close
	// without appending: the empty segment must not break the next
	// recovery or collide with its successor.
	for i := 0; i < 3; i++ {
		l2, info, _ := replayAll(t, opt)
		if info.LastSeq != 1 {
			t.Fatalf("pass %d: LastSeq = %d", i, info.LastSeq)
		}
		l2.Close()
	}
}

func TestStickyErrorPoisonsLog(t *testing.T) {
	opt := testOptions(t, SyncAlways)
	l := openEmpty(t, opt)
	defer l.Close()
	l.fail(fmt.Errorf("simulated disk failure"))
	if _, err := l.Append(mutateRecord("emp", 1)); err == nil {
		t.Fatal("Append succeeded on a failed log")
	}
	if err := l.Commit(1); err == nil {
		t.Fatal("Commit succeeded on a failed log")
	}
}

func TestCRCDetectsFlip(t *testing.T) {
	frame, err := appendFrame(nil, mutateRecord("emp", 7, "x"))
	if err != nil {
		t.Fatal(err)
	}
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if crc32.Checksum(frame[headerBytes:], castagnoli) != sum {
		t.Fatal("checksum does not round-trip")
	}
	frame[len(frame)-1] ^= 0x80
	if crc32.Checksum(frame[headerBytes:], castagnoli) == sum {
		t.Fatal("checksum missed a bit flip")
	}
}
