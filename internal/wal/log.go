// The append side of the log: sequence assignment, segment rotation,
// and the group-commit fsync machinery behind the sync policies.

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".ckpt"
)

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix)
}

// parseSeq extracts the sequence number from a segment or snapshot file
// name with the given prefix/suffix.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Log is the append side of a write-ahead log directory. Construct with
// Recover (which replays existing state first); append with Append and
// make records durable with Commit.
//
// Concurrency: Append and Commit are safe for concurrent use. The
// fsync of one committer covers every record appended before it ran —
// group commit — so N concurrent mutators share one disk flush.
type Log struct {
	opt Options
	met *logMetrics // nil when Options.Registry is nil

	// mu serializes appends and rotation. The fsync itself runs *off*
	// this lock (syncOnce sets flushing, releases mu, flushes, relocks):
	// appenders keep writing to the active segment while a flush is in
	// flight, and the next flush covers them all together — the
	// group-commit batch. Rotation and Close wait on flushCnd for an
	// in-flight flush before closing the file under it.
	mu       sync.Mutex
	flushCnd *sync.Cond // signals flushing -> false; condition on mu
	flushing bool       // guarded-by: mu — an fsync is in flight off-lock
	f        *os.File   // guarded-by: mu — active segment
	// buf is the frame scratch buffer; every Append encodes into it and
	// writes it out in one syscall.
	buf      []byte // guarded-by: mu
	seq      uint64 // guarded-by: mu — last assigned sequence number
	appended uint64 // guarded-by: mu — last sequence written to the OS
	segStart uint64 // guarded-by: mu — first sequence of the active segment
	segBytes int64  // guarded-by: mu — bytes written to the active segment
	segments int    // guarded-by: mu — segment files on disk
	closed   bool   // guarded-by: mu
	// seqWait is closed and replaced whenever the published sequence
	// advances (or the log closes); WaitSeq parks on it. A channel
	// rather than a sync.Cond so waiters can select against a stop
	// channel.
	seqWait chan struct{} // guarded-by: mu

	// syncMu guards the durability frontier shared between committers
	// and the sync loop. Lock order: mu before syncMu, never the
	// reverse.
	syncMu  sync.Mutex
	syncCnd *sync.Cond
	durable uint64 // guarded-by: syncMu — last fsynced sequence
	failed  error  // guarded-by: syncMu — sticky first write/fsync error

	// lastSnap publishes the latest snapshot's (seq, unix nanos) for the
	// age gauge and the stats surface.
	lastSnapSeq  uint64 // guarded-by: syncMu
	lastSnapTime int64  // guarded-by: syncMu

	kick     chan struct{}
	done     chan struct{}
	loopDone chan struct{}
}

// openLog opens a fresh active segment starting at nextSeq and starts
// the sync loop for the configured policy. Recovery calls it after
// replay; the truncated tail segment is never reopened for appends — a
// new segment keeps the "first sequence in the name" invariant simple.
//
// The holds directive below reflects exclusive ownership: the log is
// under construction and unshared until this returns.
//
//predmatchvet:holds mu, syncMu
func openLog(opt Options, lastSeq uint64, segments int) (*Log, error) {
	l := &Log{
		opt:      opt,
		seq:      lastSeq,
		appended: lastSeq,
		segments: segments,
		seqWait:  make(chan struct{}),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	l.flushCnd = sync.NewCond(&l.mu)
	l.syncCnd = sync.NewCond(&l.syncMu)
	l.durable = lastSeq
	l.met = newLogMetrics(opt.Registry, l)
	if err := l.openSegment(lastSeq + 1); err != nil {
		return nil, err
	}
	go l.syncLoop()
	return l, nil
}

// openSegment creates the active segment for records starting at
// firstSeq. Callers hold mu or own the log exclusively.
//
//predmatchvet:holds mu
func (l *Log) openSegment(firstSeq uint64) error {
	path := filepath.Join(l.opt.Dir, segmentName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.f = f
	l.segStart = firstSeq
	l.segBytes = 0
	l.segments++
	if l.met != nil {
		l.met.rotations.Inc()
	}
	return nil
}

// Append assigns rec the next sequence number and writes it to the
// active segment (reaching the OS before return; durability is
// Commit's job). The returned sequence is what Commit waits on.
func (l *Log) Append(rec *Record) (uint64, error) {
	return l.append(rec, false)
}

// AppendExact appends a record that already carries its sequence
// number — the replication apply path, where a follower must preserve
// the leader's numbering so resume cursors and read-your-writes tokens
// mean the same thing on every replica. The record's Seq must be
// exactly the next sequence; anything else is a stream consistency bug
// and is refused without touching the log.
func (l *Log) AppendExact(rec *Record) (uint64, error) {
	return l.append(rec, true)
}

func (l *Log) append(rec *Record, exact bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.sticky(); err != nil {
		return 0, err
	}
	if exact {
		if rec.Seq != l.seq+1 {
			return 0, fmt.Errorf("wal: append exact: record seq %d, log expects %d", rec.Seq, l.seq+1)
		}
	} else {
		rec.Seq = l.seq + 1
	}
	buf, err := appendFrame(l.buf[:0], rec)
	if err != nil {
		return 0, err
	}
	l.buf = buf
	if l.segBytes > 0 && l.segBytes+int64(len(buf)) > l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			l.fail(err)
			return 0, err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		// A short write leaves a torn frame at the segment tail; recovery
		// truncates it, which is exactly why the sequence number is not
		// advanced here.
		err = fmt.Errorf("wal: append: %w", err)
		l.fail(err)
		return 0, err
	}
	l.seq = rec.Seq
	l.appended = l.seq
	l.segBytes += int64(len(buf))
	l.bumpSeq()
	if l.met != nil {
		l.met.records.Inc()
		l.met.bytes.Add(uint64(len(buf)))
	}
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return l.seq, nil
}

// rotate makes the active segment durable, closes it, and opens the
// next one. Callers hold mu.
//
//predmatchvet:holds mu
func (l *Log) rotate() error {
	// An off-lock fsync may hold the file; closing it mid-flush would
	// hand Sync a stale fd. Wait releases mu, so the flusher can finish.
	for l.flushing {
		l.flushCnd.Wait()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	// Everything appended so far now lives in fsynced, closed segments.
	l.advanceDurable(l.appended)
	return l.openSegment(l.seq + 1)
}

// Commit blocks until rec's sequence is durable under the configured
// policy: under SyncAlways it waits for the covering group fsync; under
// SyncInterval and SyncOff it returns immediately (the record already
// reached the OS in Append).
func (l *Log) Commit(seq uint64) error {
	if l.opt.Sync != SyncAlways {
		l.syncMu.Lock()
		defer l.syncMu.Unlock()
		return l.failed
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for l.durable < seq && l.failed == nil {
		l.syncCnd.Wait()
	}
	if l.durable >= seq {
		return nil
	}
	return l.failed
}

// sticky returns the first write/fsync failure, after which the log
// refuses further work: a WAL that cannot persist must not keep acking.
func (l *Log) sticky() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.failed
}

// fail records the first terminal error and wakes every committer.
func (l *Log) fail(err error) {
	l.syncMu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.syncCnd.Broadcast()
	l.syncMu.Unlock()
}

// advanceDurable publishes a new durability frontier.
func (l *Log) advanceDurable(seq uint64) {
	l.syncMu.Lock()
	if seq > l.durable {
		l.durable = seq
	}
	l.syncCnd.Broadcast()
	l.syncMu.Unlock()
}

// syncLoop drives fsyncs: on every append kick under SyncAlways, on a
// timer under SyncInterval, never under SyncOff.
func (l *Log) syncLoop() {
	defer close(l.loopDone)
	switch l.opt.Sync {
	case SyncAlways:
		for {
			select {
			case <-l.kick:
				// The kick arrives after the *first* append of a cohort. Yield
				// before flushing so every already-runnable appender (typically
				// committers just woken by the previous flush) gets to append
				// first — an append costs ~1µs against an ~100µs fsync, so one
				// scheduling round turns N waiting writers into one batch
				// instead of N near-empty flushes.
				runtime.Gosched()
				l.syncOnce()
			case <-l.done:
				return
			}
		}
	case SyncInterval:
		t := time.NewTicker(l.opt.SyncEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				l.syncOnce()
			case <-l.done:
				return
			}
		}
	case SyncOff:
		<-l.done
	default:
		// Options.fill and ParseSyncPolicy admit only the three policies;
		// anything else is a construction bug, not a runtime state.
		<-l.done
	}
}

// syncOnce fsyncs the active segment, advancing the durability frontier
// to everything appended before the flush started. The fsync runs with
// mu *released* under the flushing flag: appenders arriving meanwhile
// write to the segment unimpeded and the next flush covers them all at
// once — the group-commit batch. Only rotate/Close wait for the flag,
// because they close the file the flush is using.
func (l *Log) syncOnce() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	target := l.appended
	f := l.f
	l.syncMu.Lock()
	cur, failed := l.durable, l.failed
	l.syncMu.Unlock()
	if failed != nil || target <= cur {
		l.mu.Unlock()
		return
	}
	l.flushing = true
	l.mu.Unlock()

	t0 := time.Now()
	err := f.Sync()
	if l.met != nil {
		l.met.fsyncs.Inc()
		l.met.fsyncSecs.ObserveSince(t0)
	}

	l.mu.Lock()
	l.flushing = false
	l.flushCnd.Broadcast()
	l.mu.Unlock()

	if err != nil {
		l.fail(fmt.Errorf("wal: fsync: %w", err))
		return
	}
	l.advanceDurable(target)
}

// bumpSeq wakes every WaitSeq waiter after the published sequence
// moved (or the log closed).
//
//predmatchvet:holds mu
func (l *Log) bumpSeq() {
	close(l.seqWait)
	l.seqWait = make(chan struct{})
}

// WaitSeq blocks until the log's published sequence exceeds after, the
// stop channel fires, or the log closes. It returns the current last
// sequence and true when the condition holds; (0, false) on stop or
// close. This is the leader-side pacing primitive for replication
// tails: a caught-up Tail parks here instead of polling.
func (l *Log) WaitSeq(after uint64, stop <-chan struct{}) (uint64, bool) {
	for {
		l.mu.Lock()
		if l.seq > after {
			seq := l.seq
			l.mu.Unlock()
			return seq, true
		}
		if l.closed {
			l.mu.Unlock()
			return 0, false
		}
		ch := l.seqWait
		l.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return 0, false
		}
	}
}

// Advance repositions an empty log so appends resume at seq+1. This is
// the bootstrap step for a follower installing a leader snapshot into a
// fresh directory: the snapshot covers sequences 1..seq, so the local
// log must number its first record seq+1 to keep leader and follower
// sequence spaces identical. Only a log with no records is eligible —
// advancing over existing history would orphan it.
func (l *Log) Advance(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.sticky(); err != nil {
		return err
	}
	if l.seq != 0 || l.segBytes != 0 {
		return fmt.Errorf("wal: advance: log is not empty (seq %d)", l.seq)
	}
	if seq == 0 {
		return nil
	}
	for l.flushing {
		l.flushCnd.Wait()
	}
	old := filepath.Join(l.opt.Dir, segmentName(l.segStart))
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: advance: %w", err)
	}
	if err := os.Remove(old); err != nil {
		return fmt.Errorf("wal: advance: %w", err)
	}
	l.segments--
	if err := l.openSegment(seq + 1); err != nil {
		return err
	}
	if err := syncDir(l.opt.Dir); err != nil {
		return err
	}
	l.seq = seq
	l.appended = seq
	l.bumpSeq()
	l.advanceDurable(seq)
	return nil
}

// NewestSnapshot loads the newest readable snapshot in the log
// directory, or nil when none exists. The leader serves it to a
// follower whose resume cursor predates the pruned tail.
func (l *Log) NewestSnapshot() (*Snapshot, error) {
	seqs, err := listSnapshots(l.opt.Dir)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		snap, err := ReadSnapshot(filepath.Join(l.opt.Dir, snapshotName(seq)))
		if err != nil {
			l.opt.Logger.Warn("wal snapshot unreadable, falling back", "seq", seq, "err", err)
			continue
		}
		return snap, nil
	}
	return nil, nil
}

// LastSeq returns the last assigned sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// DurableSeq returns the last sequence known to be fsynced.
func (l *Log) DurableSeq() uint64 {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.durable
}

// Segments returns the number of segment files on disk.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments
}

// SnapshotSeq returns the sequence of the latest snapshot written or
// recovered through this log (0 = none).
func (l *Log) SnapshotSeq() uint64 {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.lastSnapSeq
}

// noteSnapshot publishes snapshot metadata for the stats/metrics
// surface.
func (l *Log) noteSnapshot(seq uint64, at time.Time) {
	l.syncMu.Lock()
	if seq >= l.lastSnapSeq {
		l.lastSnapSeq = seq
		l.lastSnapTime = at.UnixNano()
	}
	l.syncMu.Unlock()
}

// snapshotAge returns the seconds since the last snapshot, or 0 when
// none exists yet.
func (l *Log) snapshotAge() float64 {
	l.syncMu.Lock()
	t := l.lastSnapTime
	l.syncMu.Unlock()
	if t == 0 {
		return 0
	}
	return time.Since(time.Unix(0, t)).Seconds()
}

// Close stops the sync loop, makes every appended record durable, and
// closes the active segment. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	close(l.done)
	<-l.loopDone

	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.bumpSeq() // wake WaitSeq waiters so tails observe the close
	// The sync loop has exited, so no off-lock flush should be running;
	// the wait costs nothing then and protects any future direct caller
	// of syncOnce.
	for l.flushing {
		l.flushCnd.Wait()
	}
	if l.f == nil {
		return nil
	}
	var firstErr error
	if err := l.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr == nil {
		l.advanceDurable(l.appended)
	}
	if err := l.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	l.f = nil
	return firstErr
}

// Prune deletes snapshot and segment files made obsolete by a durable
// snapshot at snapSeq: every older snapshot, and every segment whose
// records all have sequence <= snapSeq (determined from the next
// segment's first sequence). The active segment is never deleted.
func (l *Log) Prune(snapSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return err
	}
	var firsts []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok && seq < snapSeq {
			if err := os.Remove(filepath.Join(l.opt.Dir, e.Name())); err != nil {
				return err
			}
			continue
		}
		if first, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	for i := 0; i+1 < len(firsts); i++ {
		// Segment i covers [firsts[i], firsts[i+1]-1]; deletable when the
		// snapshot covers that whole range. firsts[len-1] is the active
		// segment and always stays.
		if firsts[i+1] > snapSeq+1 {
			break
		}
		if err := os.Remove(filepath.Join(l.opt.Dir, segmentName(firsts[i]))); err != nil {
			return err
		}
		l.segments--
	}
	return syncDir(l.opt.Dir)
}

// syncDir fsyncs a directory so renames and removals within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
