package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the record scanner — the
// exact code path recovery runs over a crashed log. The invariants
// under fuzzing are the recovery contract: never panic, never report
// corruption as an error, stop at the first invalid frame, and the
// valid prefix must itself re-scan cleanly to the identical records
// (replay is deterministic and idempotent over the prefix it accepts).
func FuzzWALReplay(f *testing.F) {
	// Seed with realistic material: a well-formed log, the same log
	// truncated, bit-flipped, with garbage appended, and pure noise.
	var good []byte
	for i := 1; i <= 3; i++ {
		frame, err := appendFrame(nil, &Record{
			Seq: uint64(i), Kind: KindMutate,
			Events: []Event{{Rel: "emp", Op: "insert", ID: int64(i), Tuple: []any{"e", i * 100}}},
		})
		if err != nil {
			f.Fatal(err)
		}
		good = append(good, frame...)
	}
	f.Add(good)
	f.Add(good[:len(good)-5])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add(append(append([]byte(nil), good...), 0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length prefix
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		valid, _, err := scanRecords(bytes.NewReader(data), func(r *Record) error {
			recs = append(recs, *r)
			return nil
		})
		if err != nil {
			t.Fatalf("scanRecords returned an error for corruption: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		// The accepted prefix must re-scan cleanly (no torn tail) and
		// yield the same records: what recovery keeps after truncation is
		// exactly what it replayed.
		var again []Record
		revalid, torn, err := scanRecords(bytes.NewReader(data[:valid]), func(r *Record) error {
			again = append(again, *r)
			return nil
		})
		if err != nil || torn {
			t.Fatalf("valid prefix re-scan: torn=%v err=%v", torn, err)
		}
		if revalid != valid || len(again) != len(recs) {
			t.Fatalf("re-scan: %d bytes %d records, first scan %d bytes %d records",
				revalid, len(again), valid, len(recs))
		}
		for i := range recs {
			if recs[i].Seq != again[i].Seq || recs[i].Kind != again[i].Kind {
				t.Fatalf("record %d differs between scans", i)
			}
		}
	})
}

// FuzzDecodeFrameHeader narrows in on the header parser with
// adversarial length prefixes.
func FuzzDecodeFrameHeader(f *testing.F) {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecordBytes+1)
	f.Add(hdr[:])
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		valid, _, err := scanRecords(bytes.NewReader(data), func(*Record) error { return nil })
		if err != nil {
			t.Fatalf("err = %v", err)
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid %d > input %d", valid, len(data))
		}
	})
}
