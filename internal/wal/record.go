// Record framing: every log entry is length-prefixed, CRC32C-checked
// JSON. The payload reuses the wire package's codecs (wire.Attr,
// wire.Predicate, wire tuple literals), so the log speaks the same
// dialect as the network protocol and the two cannot drift apart.

package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"predmatch/internal/wire"
)

// Record kinds: one per state-changing operation of the daemon. A
// switch over these must be exhaustive or carry a default — enforced by
// the wireexhaustive analyzer, which treats Kind* exactly like the wire
// package's Op*/Type* groups.
const (
	// KindDeclare records a relation declaration (schema).
	KindDeclare = "declare"
	// KindIndex records a secondary-index creation.
	KindIndex = "index"
	// KindRule records a rule definition by source text.
	KindRule = "rule"
	// KindDropRule records a rule removal by name.
	KindDropRule = "droprule"
	// KindAddPred records a direct-predicate registration with its
	// server-assigned ID.
	KindAddPred = "addpred"
	// KindRemovePred records a direct-predicate removal.
	KindRemovePred = "rmpred"
	// KindMutate records one client mutation as the full set of storage
	// events it applied — the triggering insert/update/delete plus every
	// cascaded rule-action change — in chronological order. The set is
	// one record, so it is atomic under recovery: a torn tail can never
	// leave half a cascade applied.
	KindMutate = "mutate"
)

// Event is one applied storage change inside a KindMutate record.
// Tuples are carried in the wire literal form ([]any) and decoded
// against the (already recovered) schema at replay time.
type Event struct {
	Rel string `json:"rel"`
	Op  string `json:"op"` // insert, update, delete (storage.Op.String)
	ID  int64  `json:"id"`
	// Tuple is the new image for inserts and updates; deletes carry
	// none (replay removes by ID).
	Tuple []any `json:"tuple,omitempty"`
}

// Record is one logged operation. Only the fields of the given Kind are
// meaningful; the rest stay zero and are omitted from the payload.
type Record struct {
	// Seq is the record's log sequence number, assigned by Append.
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`

	Relation string          `json:"relation,omitempty"` // declare, index
	Attrs    []wire.Attr     `json:"attrs,omitempty"`    // declare
	Attr     string          `json:"attr,omitempty"`     // index
	Source   string          `json:"source,omitempty"`   // rule
	Name     string          `json:"name,omitempty"`     // droprule
	PredID   int64           `json:"pred_id,omitempty"`  // addpred, rmpred
	Pred     *wire.Predicate `json:"pred,omitempty"`     // addpred
	Events   []Event         `json:"events,omitempty"`   // mutate

	// Trace is the trace context of the traced request that produced
	// this record, if any. It rides the record through the log and the
	// replication stream so a follower can attach its apply span to the
	// same trace; recovery replay ignores it.
	Trace *wire.TraceContext `json:"trace,omitempty"`
}

// Frame layout constants.
const (
	headerBytes = 8 // uint32 length + uint32 CRC32C
	// maxRecordBytes bounds one record's payload; a length prefix above
	// it is treated as corruption, which keeps a bit-flipped length from
	// asking recovery to allocate gigabytes.
	maxRecordBytes = 64 << 20
)

// castagnoli is the CRC32C table (the checksum used by iSCSI, ext4 and
// most modern WALs; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes rec into one framed log entry appended to dst.
func appendFrame(dst []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return dst, fmt.Errorf("wal: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return dst, fmt.Errorf("wal: record payload %d bytes exceeds limit %d", len(payload), maxRecordBytes)
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// decodeFrame reads one framed record. It distinguishes three outcomes:
// (rec, n, nil) for a valid record occupying n bytes; (nil, 0, io.EOF)
// for a clean end of input; and (nil, 0, errTorn) for anything else — a
// partial header, a length past the limit, a short payload, a CRC
// mismatch, or undecodable JSON. Callers treat errTorn as end-of-log.
func decodeFrame(r *bufio.Reader) (*Record, int64, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, 0, io.EOF // clean end: not a single byte of a next record
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, 0, errTorn
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordBytes {
		return nil, 0, errTorn
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, errTorn
	}
	rec := new(Record)
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.UseNumber() // tuple ints must survive as json.Number, not float64
	if err := dec.Decode(rec); err != nil {
		return nil, 0, errTorn
	}
	return rec, headerBytes + int64(length), nil
}

// errTorn marks a frame that failed validation; scanRecords converts it
// into a truncation point rather than an error.
var errTorn = fmt.Errorf("wal: torn record")

// scanRecords decodes framed records from r until a clean EOF or the
// first invalid frame. It returns the byte length of the valid prefix
// and whether the scan ended on a torn/corrupt frame (false = clean
// EOF). err is non-nil only when fn rejects a record; corruption is
// never an error here — the caller decides whether a torn tail is
// tolerable (last segment) or fatal (interior segment).
func scanRecords(r io.Reader, fn func(*Record) error) (valid int64, torn bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		rec, n, derr := decodeFrame(br)
		switch derr {
		case nil:
		case io.EOF:
			return valid, false, nil
		default:
			return valid, true, nil
		}
		if err := fn(rec); err != nil {
			return valid, false, err
		}
		valid += n
	}
}
