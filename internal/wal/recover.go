// Crash recovery: load the newest readable snapshot, replay the log
// tail after it, truncate a torn final record, and hand back an open
// Log ready to append. This is the only constructor for a Log — a
// durable daemon always starts by recovering, even from an empty
// directory.

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Handler receives the recovered state. Both callbacks are optional
// (predmatch restore inspects RecoveryInfo only).
type Handler struct {
	// LoadSnapshot installs the snapshot state; called at most once,
	// before any Apply.
	LoadSnapshot func(*Snapshot) error
	// Apply replays one log record, in sequence order, each exactly once.
	Apply func(*Record) error
}

// RecoveryInfo summarizes what Recover did.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence of the snapshot loaded (0 = none).
	SnapshotSeq uint64
	// SnapshotsSkipped counts unreadable (torn/corrupt) snapshots that
	// were passed over for an older one.
	SnapshotsSkipped int
	// RecordsReplayed counts records handed to Apply.
	RecordsReplayed uint64
	// TruncatedBytes is the size of the discarded torn tail, if any.
	TruncatedBytes int64
	// LastSeq is the log's last sequence after recovery; appends resume
	// at LastSeq+1.
	LastSeq uint64
}

// Recover replays the durable state in opt.Dir (created if missing)
// through h and returns the log opened for appending.
//
// Corruption policy: an unreadable snapshot falls back to the previous
// one; a torn or corrupt record at the tail of the *last* segment is
// truncated silently (a crash mid-append is normal operation, not
// damage); the same corruption in an interior segment is a hard error,
// because records after it exist and replaying around a hole would
// resurrect a state no client ever observed.
func Recover(opt Options, h Handler) (*Log, RecoveryInfo, error) {
	opt.fill()
	var info RecoveryInfo
	if opt.Dir == "" {
		return nil, info, fmt.Errorf("wal: no data directory")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, info, err
	}

	snap, skipped, err := loadNewestSnapshot(opt)
	if err != nil {
		return nil, info, err
	}
	info.SnapshotsSkipped = skipped
	if snap != nil {
		info.SnapshotSeq = snap.Seq
		if h.LoadSnapshot != nil {
			if err := h.LoadSnapshot(snap); err != nil {
				return nil, info, fmt.Errorf("wal: load snapshot %d: %w", snap.Seq, err)
			}
		}
	}

	segs, err := listSegments(opt.Dir)
	if err != nil {
		return nil, info, err
	}
	lastSeq := info.SnapshotSeq
	var next uint64 // expected next sequence; 0 until the first record
	for i, firstSeq := range segs {
		path := filepath.Join(opt.Dir, segmentName(firstSeq))
		f, err := os.Open(path)
		if err != nil {
			return nil, info, err
		}
		first := true
		valid, torn, err := scanRecords(f, func(rec *Record) error {
			if first {
				first = false
				if rec.Seq != firstSeq {
					return fmt.Errorf("wal: segment %s starts at seq %d", filepath.Base(path), rec.Seq)
				}
				if next == 0 && info.SnapshotSeq > 0 && rec.Seq > info.SnapshotSeq+1 {
					return fmt.Errorf("wal: gap between snapshot %d and first record %d", info.SnapshotSeq, rec.Seq)
				}
				if next == 0 && info.SnapshotSeq == 0 && rec.Seq != 1 {
					// No snapshot justifies a log that starts mid-history
					// (deleted snapshots, or a follower bootstrap that
					// advanced the log without persisting one).
					return fmt.Errorf("wal: log starts at seq %d with no snapshot", rec.Seq)
				}
			}
			if next != 0 && rec.Seq != next {
				return fmt.Errorf("wal: sequence gap: want %d, got %d", next, rec.Seq)
			}
			next = rec.Seq + 1
			if rec.Seq > lastSeq {
				lastSeq = rec.Seq
			}
			if rec.Seq <= info.SnapshotSeq || h.Apply == nil {
				return nil // already covered by the snapshot
			}
			info.RecordsReplayed++
			return h.Apply(rec)
		})
		f.Close()
		if err != nil {
			return nil, info, err
		}
		if torn {
			if i != len(segs)-1 {
				return nil, info, fmt.Errorf("wal: corrupt record inside interior segment %s", filepath.Base(path))
			}
			st, err := os.Stat(path)
			if err != nil {
				return nil, info, err
			}
			info.TruncatedBytes = st.Size() - valid
			if err := os.Truncate(path, valid); err != nil {
				return nil, info, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			opt.Logger.Info("wal torn tail truncated",
				"segment", filepath.Base(path), "bytes", info.TruncatedBytes)
		}
		// An empty tail segment (crash before its first append, or a
		// fully-torn one just truncated) is removed so the fresh active
		// segment can reuse its first-sequence name.
		if st, err := os.Stat(path); err == nil && st.Size() == 0 {
			if err := os.Remove(path); err != nil {
				return nil, info, err
			}
		}
	}
	info.LastSeq = lastSeq

	remaining, err := listSegments(opt.Dir)
	if err != nil {
		return nil, info, err
	}
	l, err := openLog(opt, lastSeq, len(remaining))
	if err != nil {
		return nil, info, err
	}
	if snap != nil && snap.TakenUnixNano > 0 {
		// Republish for the age gauge; the time is the snapshot's own.
		l.noteSnapshot(snap.Seq, time.Unix(0, snap.TakenUnixNano))
	}
	if l.met != nil {
		l.met.recoveries.Inc()
		l.met.recoveredRecords.Add(info.RecordsReplayed)
		l.met.truncatedBytes.Add(uint64(info.TruncatedBytes))
	}
	opt.Logger.Info("wal recovered",
		"snapshot_seq", info.SnapshotSeq,
		"records_replayed", info.RecordsReplayed,
		"truncated_bytes", info.TruncatedBytes,
		"last_seq", info.LastSeq)
	return l, info, nil
}

// loadNewestSnapshot returns the newest readable snapshot in the
// directory, skipping (with a log line) any that fail validation.
func loadNewestSnapshot(opt Options) (*Snapshot, int, error) {
	seqs, err := listSnapshots(opt.Dir)
	if err != nil {
		return nil, 0, err
	}
	for i, seq := range seqs {
		snap, err := ReadSnapshot(filepath.Join(opt.Dir, snapshotName(seq)))
		if err != nil {
			opt.Logger.Warn("wal snapshot unreadable, falling back", "seq", seq, "err", err)
			continue
		}
		return snap, i, nil
	}
	return nil, len(seqs), nil
}

// listSegments returns the first sequences of the segment files in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		if first, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}
