package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"predmatch/internal/wire"
)

func testSnapshot(seq uint64) *Snapshot {
	return &Snapshot{
		Seq: seq,
		Relations: []SnapRelation{{
			Name: "emp",
			Attrs: []wire.Attr{
				{Name: "name", Type: "string"},
				{Name: "salary", Type: "int"},
			},
			Indexes: []string{"salary"},
			NextID:  4,
			Rows: []SnapRow{
				{ID: 1, Tuple: []any{"ada", int64(18000)}},
				{ID: 3, Tuple: []any{"cyd", int64(9007199254740993)}}, // > 2^53: float64 would corrupt it
			},
		}},
		Rules:      []string{"rule r1 on insert to emp when salary < 100 do log 'x'"},
		Preds:      []SnapPred{{ID: 1 << 40, Pred: wire.Predicate{Rel: "emp"}}},
		NextPredID: 2,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	defer l.Close()

	path, n, err := l.WriteSnapshot(testSnapshot(7))
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if n <= headerBytes {
		t.Fatalf("snapshot size %d", n)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.Seq != 7 || got.Version != snapshotVersion {
		t.Fatalf("seq=%d version=%d", got.Seq, got.Version)
	}
	if len(got.Relations) != 1 || got.Relations[0].Name != "emp" || got.Relations[0].NextID != 4 {
		t.Fatalf("relations: %+v", got.Relations)
	}
	// The big int must survive as a json.Number that parses back exactly.
	big, ok := got.Relations[0].Rows[1].Tuple[1].(json.Number)
	if !ok {
		t.Fatalf("tuple int decoded as %T, want json.Number", got.Relations[0].Rows[1].Tuple[1])
	}
	if v, err := big.Int64(); err != nil || v != 9007199254740993 {
		t.Fatalf("big int round trip: %v %v", v, err)
	}
	if got.Preds[0].ID != 1<<40 || got.NextPredID != 2 {
		t.Fatalf("preds: %+v next=%d", got.Preds, got.NextPredID)
	}
	if l.SnapshotSeq() != 7 {
		t.Fatalf("SnapshotSeq = %d", l.SnapshotSeq())
	}
	if l.snapshotAge() < 0 {
		t.Fatal("negative snapshot age")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	defer l.Close()
	path, _, err := l.WriteSnapshot(testSnapshot(3))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("ReadSnapshot accepted a corrupted checkpoint")
	}
}

func TestRecoveryFallsBackToOlderSnapshot(t *testing.T) {
	opt := testOptions(t, SyncOff)
	l := openEmpty(t, opt)
	// Log 1..5, snapshot at 3 (good) and at 5 (to be corrupted).
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := l.WriteSnapshot(testSnapshot(3)); err != nil {
		t.Fatal(err)
	}
	path5, _, err := l.WriteSnapshot(testSnapshot(5))
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.Truncate(path5, 10); err != nil {
		t.Fatal(err)
	}

	var loaded *Snapshot
	var replayed []uint64
	l2, info, err := Recover(opt, Handler{
		LoadSnapshot: func(s *Snapshot) error { loaded = s; return nil },
		Apply:        func(r *Record) error { replayed = append(replayed, r.Seq); return nil },
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer l2.Close()
	if loaded == nil || loaded.Seq != 3 {
		t.Fatalf("loaded snapshot %+v, want seq 3", loaded)
	}
	if info.SnapshotSeq != 3 || info.SnapshotsSkipped != 1 {
		t.Fatalf("info: %+v", info)
	}
	// Only the tail after the snapshot replays.
	if len(replayed) != 2 || replayed[0] != 4 || replayed[1] != 5 {
		t.Fatalf("replayed %v, want [4 5]", replayed)
	}
}

func TestPruneDeletesCoveredSegmentsAndOldSnapshots(t *testing.T) {
	opt := testOptions(t, SyncOff)
	opt.SegmentBytes = 128
	l := openEmpty(t, opt)
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i), "padding-padding")); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, _ := listSegments(opt.Dir)
	if len(segsBefore) < 4 {
		t.Fatalf("want >=4 segments, got %d", len(segsBefore))
	}
	if _, _, err := l.WriteSnapshot(testSnapshot(10)); err != nil {
		t.Fatal(err)
	}
	last := l.LastSeq()
	if _, _, err := l.WriteSnapshot(testSnapshot(last)); err != nil {
		t.Fatal(err)
	}
	if err := l.Prune(last); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	segsAfter, _ := listSegments(opt.Dir)
	if len(segsAfter) != 1 {
		t.Fatalf("segments after prune: %v (want only the active one)", segsAfter)
	}
	snaps, _ := listSnapshots(opt.Dir)
	if len(snaps) != 1 || snaps[0] != last {
		t.Fatalf("snapshots after prune: %v, want [%d]", snaps, last)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("Segments() = %d after prune", got)
	}
	l.Close()

	// The pruned directory still recovers to the full state.
	var loaded *Snapshot
	l2, info, err := Recover(opt, Handler{LoadSnapshot: func(s *Snapshot) error { loaded = s; return nil }})
	if err != nil {
		t.Fatalf("Recover after prune: %v", err)
	}
	defer l2.Close()
	if loaded == nil || loaded.Seq != last || info.LastSeq != last {
		t.Fatalf("after prune: loaded=%v info=%+v", loaded, info)
	}
	if _, err := os.Stat(filepath.Join(opt.Dir, snapshotName(last))); err != nil {
		t.Fatal(err)
	}
}

func TestPruneKeepsUncoveredSegments(t *testing.T) {
	opt := testOptions(t, SyncOff)
	opt.SegmentBytes = 128
	l := openEmpty(t, opt)
	defer l.Close()
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(mutateRecord("emp", int64(i), "padding-padding")); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(opt.Dir)
	// Snapshot in the middle of the log: segments fully covered by it go,
	// segments holding any record past it stay.
	const snapSeq = 10
	if _, _, err := l.WriteSnapshot(testSnapshot(snapSeq)); err != nil {
		t.Fatal(err)
	}
	if err := l.Prune(snapSeq); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(opt.Dir)
	if len(after) >= len(segs) {
		t.Fatalf("partial prune deleted nothing: %v", after)
	}
	// The segment holding record snapSeq+1 (and everything after) must
	// survive, so record snapSeq+1 is still replayable.
	if after[0] > snapSeq+1 {
		t.Fatalf("prune deleted a segment holding record %d: remaining %v", snapSeq+1, after)
	}
	l.Close()
	var replayed []uint64
	l2, info, err := Recover(opt, Handler{Apply: func(r *Record) error {
		if r.Seq > snapSeq {
			replayed = append(replayed, r.Seq)
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("Recover after partial prune: %v", err)
	}
	defer l2.Close()
	if info.LastSeq != 40 || len(replayed) != 30 || replayed[0] != snapSeq+1 {
		t.Fatalf("after partial prune: info=%+v replayed=%d", info, len(replayed))
	}
}
