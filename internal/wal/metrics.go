// WAL instrumentation: the durability subsystem's metric families,
// registered on the server's obs.Registry. All handles are nil-safe
// (the obs disabled-by-default contract), so an unregistered log pays
// one nil check per instrumentation point.

package wal

import "predmatch/internal/obs"

// logMetrics holds the hot-path handles; exposition-time quantities
// (sequence frontiers, snapshot age) are GaugeFuncs sampled from the
// Log itself.
type logMetrics struct {
	records   *obs.Counter
	bytes     *obs.Counter
	fsyncs    *obs.Counter
	rotations *obs.Counter
	fsyncSecs *obs.Histogram

	snapshots    *obs.Counter
	snapshotSecs *obs.Histogram

	recoveries       *obs.Counter
	recoveredRecords *obs.Counter
	truncatedBytes   *obs.Counter
}

// newLogMetrics registers the WAL metric families. A nil registry
// returns nil, and every use site tolerates both a nil *logMetrics and
// nil handles.
func newLogMetrics(r *obs.Registry, l *Log) *logMetrics {
	if r == nil {
		return nil
	}
	m := &logMetrics{
		records: r.Counter("predmatch_wal_records_total",
			"Records appended to the write-ahead log."),
		bytes: r.Counter("predmatch_wal_bytes_total",
			"Bytes appended to the write-ahead log (frames incl. headers)."),
		fsyncs: r.Counter("predmatch_wal_fsyncs_total",
			"fsync calls issued by the log (each may cover many records: group commit)."),
		rotations: r.Counter("predmatch_wal_segment_opens_total",
			"Segment files opened (initial open and rotations)."),
		fsyncSecs: r.Histogram("predmatch_wal_fsync_seconds",
			"Latency of WAL fsync calls."),
		snapshots: r.Counter("predmatch_wal_snapshots_total",
			"Checkpoint snapshots written."),
		snapshotSecs: r.Histogram("predmatch_wal_snapshot_seconds",
			"Wall time to serialize and persist one snapshot."),
		recoveries: r.Counter("predmatch_wal_recoveries_total",
			"Recovery passes performed (1 per process start with a data dir)."),
		recoveredRecords: r.Counter("predmatch_wal_recovered_records_total",
			"Log records replayed during recovery."),
		truncatedBytes: r.Counter("predmatch_wal_truncated_bytes_total",
			"Bytes of torn/corrupt log tail discarded during recovery."),
	}
	r.GaugeFunc("predmatch_wal_last_seq",
		"Last assigned log sequence number.",
		func() float64 { return float64(l.LastSeq()) })
	r.GaugeFunc("predmatch_wal_durable_seq",
		"Last log sequence number known to be fsynced.",
		func() float64 { return float64(l.DurableSeq()) })
	r.GaugeFunc("predmatch_wal_segments",
		"Segment files currently on disk.",
		func() float64 { return float64(l.Segments()) })
	r.GaugeFunc("predmatch_wal_snapshot_seq",
		"Log sequence covered by the latest snapshot (0 = none).",
		func() float64 { return float64(l.SnapshotSeq()) })
	r.GaugeFunc("predmatch_wal_snapshot_age_seconds",
		"Seconds since the latest snapshot was written (0 = none yet).",
		func() float64 { return l.snapshotAge() })
	return m
}
