// Live log tailing: the leader side of replication reads the segment
// files it is itself appending to and streams records to followers. A
// Tail never reads past the published sequence frontier (Log.WaitSeq),
// and a frame is fully written — one Write syscall in append — before
// the frontier advances, so a Tail only ever decodes complete frames.

package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrTruncated reports that a Tail's requested sequence is no longer on
// disk: pruning removed the covering segment. The caller falls back to
// the newest snapshot and resumes the tail after it.
var ErrTruncated = errors.New("wal: tail: requested sequence no longer on disk")

// Tail is a sequential live reader of the log starting at a chosen
// sequence. Next blocks until the next record is published, following
// segment rotations transparently. A Tail holds its own file handle,
// so it keeps draining even while appends continue, and (on platforms
// with POSIX unlink semantics) survives its current segment being
// pruned mid-read — only opening the *next* segment can then fail with
// ErrTruncated.
//
// A Tail is not safe for concurrent use; each replication stream owns
// one.
type Tail struct {
	l    *Log
	next uint64 // next sequence Next will return
	f    *os.File
	br   *bufio.Reader
}

// OpenTail positions a new Tail so that the first Next returns fromSeq
// (0 is treated as 1). It fails with ErrTruncated when fromSeq has been
// pruned, and rejects a fromSeq beyond the published end of the log —
// a follower claiming history the leader never wrote is a split brain,
// not a resume.
func (l *Log) OpenTail(fromSeq uint64) (*Tail, error) {
	if fromSeq == 0 {
		fromSeq = 1
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	last := l.seq
	l.mu.Unlock()
	if fromSeq > last+1 {
		return nil, fmt.Errorf("wal: tail from seq %d is past the log end %d", fromSeq, last)
	}
	t := &Tail{l: l, next: fromSeq}
	if err := t.open(fromSeq); err != nil {
		return nil, err
	}
	return t, nil
}

// open seeks the segment whose range contains seq and opens it from the
// start; Next discards records before the cursor. Rotation keeps the
// invariant that a segment's name is its first sequence, so the right
// file is the one with the greatest first sequence <= seq.
func (t *Tail) open(seq uint64) error {
	segs, err := listSegments(t.l.opt.Dir)
	if err != nil {
		return err
	}
	var first uint64
	found := false
	for _, s := range segs {
		if s <= seq {
			first = s
			found = true
		}
	}
	if !found {
		return ErrTruncated
	}
	f, err := os.Open(filepath.Join(t.l.opt.Dir, segmentName(first)))
	if err != nil {
		if os.IsNotExist(err) {
			// Pruned between the listing and the open.
			return ErrTruncated
		}
		return err
	}
	if t.f != nil {
		t.f.Close()
	}
	t.f = f
	t.br = bufio.NewReaderSize(f, 1<<16)
	return nil
}

// Next returns the record at the tail's cursor, blocking until it is
// published. It returns ErrClosed when the log closes or stop fires,
// and ErrTruncated when pruning outran the cursor (resume from a
// snapshot instead).
func (t *Tail) Next(stop <-chan struct{}) (*Record, error) {
	for {
		// Never decode ahead of the published frontier: the frame for
		// t.next is guaranteed complete on disk only once the frontier
		// covers it.
		if _, ok := t.l.WaitSeq(t.next-1, stop); !ok {
			return nil, ErrClosed
		}
		rec, _, err := decodeFrame(t.br)
		switch err {
		case nil:
			if rec.Seq < t.next {
				continue // positioning skip: records before the cursor
			}
			if rec.Seq != t.next {
				return nil, fmt.Errorf("wal: tail: want seq %d, found %d", t.next, rec.Seq)
			}
			t.next++
			return rec, nil
		case io.EOF:
			// Segment exhausted while t.next is published: the log rotated
			// and the record lives in a later segment.
			if err := t.open(t.next); err != nil {
				return nil, err
			}
		default:
			// A torn frame below the published frontier cannot come from a
			// crash (we never read past what append completed); it is disk
			// corruption and the stream cannot continue.
			return nil, fmt.Errorf("wal: tail: corrupt frame at seq %d", t.next)
		}
	}
}

// Close releases the tail's file handle.
func (t *Tail) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
