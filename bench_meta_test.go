// BenchmarkMetaMatcher is the adaptive meta-matcher's acceptance
// measurement: for each workload cell (stab-heavy, mixed, churn-heavy)
// it times every fixed sharded structure (ibs, islist, hint) and the
// adaptive matcher on the same operation stream. The claim under test:
// meta, after its warm-up migrations, lands within a few percent of the
// best fixed structure of each cell and far from the worst — no single
// fixed choice does that across all three cells. The "migrations"
// metric on the meta rows records the live structure changes the warmup
// performed (≥1 in the stab-heavy cell, where the ibs default is
// wrong). TestMetaCompetitive asserts the same property as a pass/fail
// sweep; it is env-gated (META_SWEEP=1) because it needs seconds of
// steady-state timing that would bloat the tier-1 run.
package repro

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"predmatch/internal/interval"
	"predmatch/internal/matcher"
	"predmatch/internal/meta"
	"predmatch/internal/pred"
	"predmatch/internal/shard"
	"predmatch/internal/strategy"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/workload"
)

// metaCell is one workload mix: churnPct percent of operations are
// addpred/rmpred pairs (structural index writes), the rest match
// probes.
type metaCell struct {
	name     string
	churnPct int
}

var metaCells = []metaCell{
	{"stab-heavy", 0},
	{"mixed", 30},
	{"churn-heavy", 70},
}

// metaStanding is the standing predicate population per cell — large
// enough that structure choice dominates and far past the engine's
// warm-up threshold, but small enough that the churn cells stay
// affordable: every serving-layer write pays a full copy-on-write
// clone of the relation's index, so churn cost scales with this.
const metaStanding = 512

// buildMetaPop generates the deterministic single-relation population
// and probe tuples every strategy in the sweep shares.
func buildMetaPop(tb testing.TB) (*workload.Population, string, []tuple.Tuple) {
	tb.Helper()
	rng := rand.New(rand.NewSource(1990))
	spec := workload.SchemaSpec{
		Relations:     1,
		AttrsPerRel:   15,
		UsedAttrFrac:  1.0 / 3.0,
		PredsPerRel:   metaStanding,
		ClausesPer:    2,
		IndexableFrac: 0.9,
		PointFrac:     0.5,
	}
	pop, err := spec.Build(rng)
	if err != nil {
		tb.Fatal(err)
	}
	rel := pop.Rels[0]
	tuples := make([]tuple.Tuple, 4096)
	for i := range tuples {
		tuples[i] = pop.Tuple(rng, rel)
	}
	return pop, rel.Name(), tuples
}

// churnPred builds the i-th transient predicate: a fresh salary-band
// style clause on the relation's first attribute, deterministic in i.
func churnPred(id pred.ID, rel string, i int) *pred.Predicate {
	lo := int64(workload.DomainMin + (i*37)%workload.DomainMax)
	return pred.New(id, rel, pred.IvClause("a00",
		interval.Closed(value.Int(lo), value.Int(lo+200))))
}

// runMetaOps streams n operations of the cell's mix against m,
// starting at stream offset off (so consecutive calls continue the
// same deterministic stream). Returns the reusable match buffer.
func runMetaOps(tb testing.TB, m matcher.Matcher, cell metaCell, rel string, tuples []tuple.Tuple, off, n int, buf []pred.ID) []pred.ID {
	tb.Helper()
	for i := off; i < off+n; i++ {
		if i%100 < cell.churnPct {
			id := pred.ID(1<<20 + i%1024)
			if err := m.Add(churnPred(id, rel, i)); err != nil {
				tb.Fatal(err)
			}
			if err := m.Remove(id); err != nil {
				tb.Fatal(err)
			}
		} else {
			var err error
			buf, err = m.Match(rel, tuples[i%len(tuples)], buf[:0])
			if err != nil {
				tb.Fatal(err)
			}
		}
	}
	return buf
}

// metaSweepMatchers returns the sweep's constructors: each fixed
// candidate structure behind the same sharded serving layer meta uses,
// plus the adaptive matcher itself (whose engine is returned for
// warm-up ticks and the migration count).
func metaSweepMatchers(tb testing.TB, pop *workload.Population) map[string]func() (matcher.Matcher, *meta.Engine) {
	tb.Helper()
	out := make(map[string]func() (matcher.Matcher, *meta.Engine))
	for _, c := range strategy.MetaCandidates() {
		name := c.Name
		opts, ok := strategy.CoreOptions(name)
		if !ok {
			tb.Fatalf("no core options for candidate %q", name)
		}
		out[name] = func() (matcher.Matcher, *meta.Engine) {
			var smOpts []shard.Option
			if len(opts) > 0 {
				smOpts = append(smOpts, shard.WithIndexOptions(opts...),
					shard.WithName("sharded-"+name))
			}
			return shard.New(pop.Catalog, pop.Funcs, smOpts...), nil
		}
	}
	out["meta"] = func() (matcher.Matcher, *meta.Engine) {
		m, err := meta.NewMatcher(pop.Catalog, pop.Funcs, strategy.MetaConfig("ibs"))
		if err != nil {
			tb.Fatal(err)
		}
		return m, m.Engine()
	}
	return out
}

// warmMetaCell brings a matcher to its steady state for the cell:
// every strategy streams a few thousand ops (faulting in lazily built
// structures), and the adaptive engine additionally gets explicit
// decision ticks between rounds so its EWMA view of the mix forms and
// any migration lands before timing starts.
func warmMetaCell(tb testing.TB, m matcher.Matcher, eng *meta.Engine, cell metaCell, rel string, tuples []tuple.Tuple) int {
	tb.Helper()
	rounds, perRound := 1, 1000
	if eng != nil {
		eng.Tick(time.Now())
		rounds, perRound = 6, 1500
	}
	off := 0
	for r := 0; r < rounds; r++ {
		runMetaOps(tb, m, cell, rel, tuples, off, perRound, nil)
		off += perRound
		if eng != nil {
			eng.Tick(time.Now())
		}
	}
	return off
}

func migrationCount(eng *meta.Engine) float64 {
	var n uint64
	for _, d := range eng.Stats() {
		n += d.Migrations
	}
	return float64(n)
}

func BenchmarkMetaMatcher(b *testing.B) {
	pop, rel, tuples := buildMetaPop(b)
	matchers := metaSweepMatchers(b, pop)
	for _, cell := range metaCells {
		for _, name := range []string{"ibs", "islist", "hint", "meta"} {
			b.Run(fmt.Sprintf("%s/%s", cell.name, name), func(b *testing.B) {
				m, eng := matchers[name]()
				for _, p := range pop.Preds {
					if err := m.Add(p); err != nil {
						b.Fatal(err)
					}
				}
				off := warmMetaCell(b, m, eng, cell, rel, tuples)
				var buf []pred.ID
				b.ResetTimer()
				buf = runMetaOps(b, m, cell, rel, tuples, off, b.N, buf)
				b.StopTimer()
				_ = buf
				if eng != nil {
					b.ReportMetric(migrationCount(eng), "migrations")
				}
			})
		}
	}
}

// TestMetaCompetitive is the sweep as an assertion: in every cell the
// adaptive matcher must land within metaSlack of the best fixed
// structure and clearly beat the worst. Gated behind META_SWEEP=1 (CI
// runs it as an advisory step) because steady-state timing takes
// seconds and wobbles on loaded runners.
func TestMetaCompetitive(t *testing.T) {
	if os.Getenv("META_SWEEP") == "" {
		t.Skip("set META_SWEEP=1 to run the adaptive competitive sweep")
	}
	const (
		measureOps = 8000
		metaSlack  = 1.10 // within 10% of the per-cell best
	)
	pop, rel, tuples := buildMetaPop(t)
	matchers := metaSweepMatchers(t, pop)
	for _, cell := range metaCells {
		t.Run(cell.name, func(t *testing.T) {
			perOp := make(map[string]float64)
			for _, name := range []string{"ibs", "islist", "hint", "meta"} {
				m, eng := matchers[name]()
				for _, p := range pop.Preds {
					if err := m.Add(p); err != nil {
						t.Fatal(err)
					}
				}
				off := warmMetaCell(t, m, eng, cell, rel, tuples)
				start := time.Now()
				runMetaOps(t, m, cell, rel, tuples, off, measureOps, nil)
				perOp[name] = float64(time.Since(start).Nanoseconds()) / measureOps
				if eng != nil && cell.churnPct == 0 && migrationCount(eng) == 0 {
					t.Error("stab-heavy cell: no live migration during warm-up")
				}
			}
			best, worst := "", ""
			for _, name := range []string{"ibs", "islist", "hint"} {
				if best == "" || perOp[name] < perOp[best] {
					best = name
				}
				if worst == "" || perOp[name] > perOp[worst] {
					worst = name
				}
			}
			t.Logf("cell %s: best fixed %s %.0fns, worst fixed %s %.0fns, meta %.0fns",
				cell.name, best, perOp[best], worst, perOp[worst], perOp["meta"])
			if perOp["meta"] > perOp[best]*metaSlack {
				t.Errorf("meta %.0fns/op not within %d%% of best fixed %s (%.0fns/op)",
					perOp["meta"], int((metaSlack-1)*100), best, perOp[best])
			}
			// "Clearly beats the worst" only means something when the
			// structures actually diverge on this cell.
			if perOp[worst] > 2*perOp[best] && perOp["meta"] > perOp[worst]*0.75 {
				t.Errorf("meta %.0fns/op does not clearly beat worst fixed %s (%.0fns/op)",
					perOp["meta"], worst, perOp[worst])
			}
		})
	}
}
