// Command experiments regenerates the paper's evaluation artifacts:
// Figures 7-9, the Section 5.2 cost-model scenario, and the measurement
// experiments for space (Section 5.1), balancing (Section 4.3) and the
// interval-index comparison (Section 6). See EXPERIMENTS.md for the
// paper-versus-measured record.
//
// Usage:
//
//	experiments -all
//	experiments -fig 7 -fig 8
//	experiments -costmodel -space -balance -compare -strategies
//	experiments -all -quick      # smaller sweeps, for smoke tests
package main

import (
	"flag"
	"fmt"
	"os"

	"predmatch/internal/experiments"
)

type figList []int

func (f *figList) String() string { return fmt.Sprint([]int(*f)) }

func (f *figList) Set(s string) error {
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return err
	}
	if n < 7 || n > 9 {
		return fmt.Errorf("the paper's measured figures are 7, 8 and 9")
	}
	*f = append(*f, n)
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "regenerate a figure (7, 8 or 9); repeatable")
	all := flag.Bool("all", false, "run every experiment")
	costmodel := flag.Bool("costmodel", false, "run the Section 5.2 cost-model scenario")
	space := flag.Bool("space", false, "run the Section 5.1 marker-space experiment")
	balance := flag.Bool("balance", false, "run the Section 4.3 balancing ablation")
	compare := flag.Bool("compare", false, "run the Section 6 interval-index comparison")
	strategies := flag.Bool("strategies", false, "run the whole-scheme strategy shoot-out")
	memory := flag.Bool("memory", false, "run the Section 3 memory-footprint measurement")
	quick := flag.Bool("quick", false, "smaller sweeps and fewer repetitions")
	seed := flag.Int64("seed", 1990, "workload random seed")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Out: os.Stdout}

	ran := false
	if *all {
		experiments.All(cfg)
		return
	}
	for _, n := range figs {
		ran = true
		switch n {
		case 7:
			experiments.Fig7(cfg)
		case 8:
			experiments.Fig8(cfg)
		case 9:
			experiments.Fig9(cfg)
		}
	}
	if *costmodel {
		ran = true
		experiments.CostModel(cfg)
	}
	if *space {
		ran = true
		experiments.Space(cfg)
	}
	if *balance {
		ran = true
		experiments.Balance(cfg)
	}
	if *compare {
		ran = true
		experiments.Compare(cfg)
	}
	if *strategies {
		ran = true
		experiments.Strategies(cfg)
	}
	if *memory {
		ran = true
		experiments.Memory(cfg)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
