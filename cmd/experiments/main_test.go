package main

import "testing"

func TestFigListValidation(t *testing.T) {
	var f figList
	for _, ok := range []string{"7", "8", "9"} {
		if err := f.Set(ok); err != nil {
			t.Errorf("Set(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"1", "10", "x", ""} {
		var g figList
		if err := g.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if f.String() == "" {
		t.Error("String empty")
	}
	if len(f) != 3 {
		t.Errorf("figList = %v", f)
	}
}
