// Replication end-to-end test: build the real binary, run a leader and
// two followers (one through a killable TCP proxy), stream mutations
// while severing the proxied stream mid-flight, SIGKILL the leader,
// promote a follower, and require the promoted state to be exactly the
// acked prefix the follower had applied — every op whose sequence is
// covered by the promotion point present, nothing else, nothing
// partial. Also pins the seq-token contract: a read carrying min_seq=S
// against a follower never observes state older than S.
package main

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/server"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wal"
)

// replProxy is a TCP forwarder whose live connections can be cut on
// demand — the partition injector between a follower and its leader.
type replProxy struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newReplProxy(t *testing.T, target string) *replProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &replProxy{ln: ln}
	go func() {
		for {
			down, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				down.Close()
				continue
			}
			p.mu.Lock()
			p.conns = append(p.conns, down, up)
			p.mu.Unlock()
			go func() {
				io.Copy(up, down)
				up.Close()
				down.Close()
			}()
			go func() {
				io.Copy(down, up)
				down.Close()
				up.Close()
			}()
		}
	}()
	return p
}

func (p *replProxy) Addr() string { return p.ln.Addr().String() }

func (p *replProxy) KillConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

func (p *replProxy) Close() {
	p.ln.Close()
	p.KillConns()
}

// predShoe is the direct predicate registered on the leader and
// mirrored into the oracle.
func predShoe() *pred.Predicate {
	return pred.New(0, "emp", pred.EqClause("dept", value.String_("shoe")))
}

func termDaemon(d *daemon) {
	d.cmd.Process.Signal(syscall.SIGTERM)
	d.cmd.Wait()
}

// waitFollowerSeq polls a follower's stats until its applied sequence
// reaches want.
func waitFollowerSeq(t *testing.T, c *client.Client, what string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("%s stats: %v", what, err)
		}
		if st.Repl != nil && st.Repl.AppliedSeq >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at %+v, want applied >= %d", what, st.Repl, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicationFailover is the replication acceptance test (see
// docs/REPLICATION.md): after a mid-stream partition, a leader
// SIGKILL and a promotion, the promoted follower's state equals the
// oracle fed exactly the acked ops its promotion point covers.
func TestReplicationFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemons; skipped in -short")
	}
	bin := buildDaemon(t)

	leader := startDaemon(t, bin, t.TempDir())
	leaderDead := false
	defer func() {
		if !leaderDead {
			termDaemon(leader)
		}
	}()

	// Follower 1 reaches the leader through a killable proxy; follower 2
	// connects directly.
	proxy := newReplProxy(t, leader.addr)
	defer proxy.Close()
	f1 := startDaemon(t, bin, t.TempDir(), "-follow", proxy.Addr())
	defer termDaemon(f1)
	f2 := startDaemon(t, bin, t.TempDir(), "-follow", leader.addr)
	defer termDaemon(f2)

	c, err := client.Dial(leader.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fc1, err := client.Dial(f1.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc1.Close()
	fc2, err := client.Dial(f2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc2.Close()

	// Setup on the leader; wait for both followers to apply it so the
	// oracle can mirror setup unconditionally.
	for _, rel := range []*schema.Relation{crashEmpRel, crashAuditRel} {
		if err := c.DeclareRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("emp", "salary"); err != nil {
		t.Fatal(err)
	}
	for _, src := range crashRules {
		if _, err := c.DefineRule(src); err != nil {
			t.Fatal(err)
		}
	}
	setupSeq := c.LastSeq()
	waitFollowerSeq(t, fc1, "follower 1", setupSeq)
	waitFollowerSeq(t, fc2, "follower 2", setupSeq)

	// Seq-token contract: a predicate acked at S must be visible to a
	// follower read carrying min_seq=S, however soon it is issued.
	shoeID, err := c.AddPredicate(predShoe())
	if err != nil {
		t.Fatal(err)
	}
	token := c.LastSeq()
	probe := tuple.New(value.String_("p"), value.Int(30), value.Int(1000), value.String_("shoe"))
	for i, fc := range []*client.Client{fc1, fc2} {
		ids, err := fc.MatchAt("emp", probe, token)
		if err != nil {
			t.Fatalf("follower %d MatchAt(min_seq=%d): %v", i+1, token, err)
		}
		found := false
		for _, id := range ids {
			if id == shoeID {
				found = true
			}
		}
		if !found {
			t.Fatalf("follower %d seq-token read at %d missed predicate %d: %v",
				i+1, token, shoeID, ids)
		}
	}

	// Every acked op is recorded with the sequence its ack carried, so
	// the oracle can later be fed the exact prefix the promotion covers.
	type ackedOp struct {
		op  crashOp
		seq uint64
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var (
		acked    []ackedOp
		inflight *crashOp
		live     []tuple.ID
	)
	stream := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			op := randomCrashOp(rng, live)
			if err := op.apply(c, &live); err != nil {
				t.Fatalf("stream op: %v", err)
			}
			acked = append(acked, ackedOp{op, c.LastSeq()})
		}
	}

	// Phase 1: normal streaming, then a partition of follower 1's link
	// mid-stream. The follower must reconnect and resume from its
	// applied cursor.
	stream(60)
	proxy.KillConns()
	stream(60)
	waitFollowerSeq(t, fc1, "follower 1 after partition", c.LastSeq())
	st, err := fc1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Repl == nil || st.Repl.Reconnects == 0 {
		t.Errorf("follower 1 shows no reconnect after partition: %+v", st.Repl)
	}

	// Phase 2: SIGKILL the leader racing the stream, like the crash
	// test — at most one op is in flight when the connection dies.
	killer := time.AfterFunc(time.Duration(100+rng.Intn(200))*time.Millisecond, func() {
		leader.cmd.Process.Signal(syscall.SIGKILL)
	})
	defer killer.Stop()
	for i := 0; ; i++ {
		op := randomCrashOp(rng, live)
		if err := op.apply(c, &live); err != nil {
			inflight = &op
			break
		}
		acked = append(acked, ackedOp{op, c.LastSeq()})
		if i > 100000 {
			t.Fatal("kill timer never fired")
		}
	}
	c.Close()
	leader.cmd.Wait()
	leaderDead = true

	// Promote follower 1. The sealed sequence is its applied frontier;
	// replication is asynchronous, so it may trail the acked stream —
	// the oracle gets exactly the ops the seal covers.
	sealedSeq, err := fc1.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if sealedSeq < setupSeq {
		t.Fatalf("promoted at seq %d, before setup seq %d", sealedSeq, setupSeq)
	}
	maxAcked := uint64(0)
	covered := 0
	for _, a := range acked {
		if a.seq > maxAcked {
			maxAcked = a.seq
		}
		if a.seq <= sealedSeq {
			covered++
		}
	}
	t.Logf("acked %d ops (max seq %d), promoted at seq %d covering %d, in-flight: %v",
		len(acked), maxAcked, sealedSeq, covered, inflight != nil)

	// The oracle: an in-process durable server fed setup plus exactly
	// the covered prefix.
	oracleSrv, err := server.Open(server.Config{
		Addr: "127.0.0.1:0", DataDir: t.TempDir(), Sync: wal.SyncOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	oerrc := make(chan error, 1)
	go func() { oerrc <- oracleSrv.ListenAndServe() }()
	for oracleSrv.Addr() == nil {
		select {
		case err := <-oerrc:
			t.Fatalf("oracle serve: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	defer oracleSrv.Close()
	oracle, err := client.Dial(oracleSrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for _, rel := range []*schema.Relation{crashEmpRel, crashAuditRel} {
		if err := oracle.DeclareRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := oracle.CreateIndex("emp", "salary"); err != nil {
		t.Fatal(err)
	}
	for _, src := range crashRules {
		if _, err := oracle.DefineRule(src); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := oracle.AddPredicate(predShoe()); err != nil {
		t.Fatal(err)
	}
	var oracleLive []tuple.ID
	for i, a := range acked {
		if a.seq > sealedSeq {
			break // replication stopped here; later acked ops never arrived
		}
		if err := a.op.apply(oracle, &oracleLive); err != nil {
			t.Fatalf("oracle op %d (%s): %v", i, a.op.kind, err)
		}
	}
	// The in-flight op was logged iff the seal reaches one past the
	// last acked sequence: the leader applied and streamed it, but the
	// ack was lost to the kill.
	if inflight != nil && sealedSeq == maxAcked+1 {
		if err := inflight.apply(oracle, &oracleLive); err != nil {
			t.Fatalf("oracle in-flight op (%s): %v", inflight.kind, err)
		}
	}

	promoted := comparable(dumpState(t, fc1))
	want := comparable(dumpState(t, oracle))
	if promoted != want {
		t.Fatalf("promoted state differs from acked-prefix oracle:\n--- promoted ---\n%s\n--- oracle ---\n%s",
			promoted, want)
	}

	// The promoted daemon is a live leader: it takes writes numbered
	// after the sealed prefix, while follower 2 still redirects.
	if _, _, err := fc1.Insert("emp", tuple.New(
		value.String_("after"), value.Int(30), value.Int(50000), value.String_("toy"))); err != nil {
		t.Fatalf("insert after promote: %v", err)
	}
	if got := fc1.LastSeq(); got != sealedSeq+1 {
		t.Fatalf("first post-promotion write acked at seq %d, want %d", got, sealedSeq+1)
	}
	if _, _, err := fc2.Insert("emp", tuple.New(
		value.String_("x"), value.Int(1), value.Int(1), value.String_("d"))); err == nil {
		t.Fatal("follower 2 accepted a write while still following")
	}
}
