// Command predmatchd serves the predicate matching engine over TCP as
// a long-running rule-service daemon. Clients speak newline-delimited
// JSON (see docs/PROTOCOL.md): they declare relations, define rules,
// register predicates, stream tuple mutations, run match probes, and
// subscribe to rule-firing / predicate-match notifications.
//
// Usage:
//
//	predmatchd [-addr :7341] [-max-conns 128] [-queue 1024]
//	           [-write-timeout 10s] [-idle-timeout 0] [-drain 10s] [-v]
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests for up to -drain, then force-closes stragglers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"predmatch/internal/server"
)

func main() {
	addr := flag.String("addr", ":7341", "TCP listen address")
	maxConns := flag.Int("max-conns", 128, "maximum concurrent client connections")
	queue := flag.Int("queue", 1024, "per-connection notification queue capacity")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second, "deadline for writing one frame to a client")
	idleTimeout := flag.Duration("idle-timeout", 0, "close unsubscribed connections idle for this long (0 = never)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget before force-closing connections")
	verbose := flag.Bool("v", false, "log connection-level diagnostics")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: predmatchd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "predmatchd: ", log.LstdFlags)
	cfg := server.Config{
		Addr:         *addr,
		MaxConns:     *maxConns,
		QueueLen:     *queue,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	srv := server.New(cfg)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	go func() {
		// Addr is nil until Serve installs the listener.
		for range 500 {
			if a := srv.Addr(); a != nil {
				logger.Printf("listening on %s", a)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, server.ErrServerClosed) {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Printf("signal received; draining for up to %s", *drain)
		sctx, scancel := context.WithTimeout(context.Background(), *drain)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		<-errc
		logger.Printf("stopped")
	}
}
