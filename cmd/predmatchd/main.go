// Command predmatchd serves the predicate matching engine over TCP as
// a long-running rule-service daemon. Clients speak newline-delimited
// JSON (see docs/PROTOCOL.md): they declare relations, define rules,
// register predicates, stream tuple mutations, run match probes, and
// subscribe to rule-firing / predicate-match notifications.
//
// Usage:
//
//	predmatchd [-addr :7341] [-max-conns 128] [-queue 1024]
//	           [-write-timeout 10s] [-idle-timeout 0] [-drain 10s]
//	           [-admin addr] [-slowreq 0] [-v] [-index ibs]
//	           [-data-dir dir] [-fsync always|interval|off]
//	           [-fsync-interval 100ms] [-wal-segment 64MiB]
//	           [-snapshot-every 0] [-follow leader-addr]
//	           [-trace-sample 0] [-trace-buf 256]
//
// -index picks the per-shard attribute index structure from the shared
// strategy registry (internal/strategy): the paper's IBS-trees by
// default, or hint, islist, pst, segtree, inttree, augtree — run -h for
// the current list. `-index meta` instead runs the adaptive engine
// (internal/meta): each relation starts on IBS-trees and is migrated
// online between ibs, islist and hint as its observed stab/write mix
// dictates; `predmatch stats` shows the per-relation decisions.
//
// With -admin, a second HTTP listener serves the operational surface:
// /metrics (Prometheus), /varz (JSON), /healthz, /traces and
// /debug/pprof (see docs/OBSERVABILITY.md for the metric catalogue).
// -slowreq logs every request slower than the threshold and retains a
// trace for it. Structured logs go to stderr.
//
// Tracing (docs/OBSERVABILITY.md, "Tracing"): requests that carry a
// trace context are always traced end to end; -trace-sample N
// additionally head-samples one in every N requests server-side. Both
// land in an in-memory flight recorder of -trace-buf traces served at
// /traces and by `predmatch trace`.
//
// With -data-dir, the daemon is durable: it recovers the directory's
// snapshot and write-ahead log before listening, and appends every
// state-changing request to the log before acknowledging it. -fsync
// picks the sync policy (see docs/DURABILITY.md for the guarantees of
// each), -snapshot-every adds periodic background checkpoints on top
// of the shutdown and on-demand (backup op) ones.
//
// With -follow, the daemon starts as a replication follower of the
// leader at the given address (requires -data-dir): it applies the
// leader's WAL stream, serves match/subscribe/stats locally, rejects
// mutations with a leader redirect, and reconnects with backoff across
// leader outages until `predmatch promote` seals the stream and turns
// it into a leader (see docs/REPLICATION.md).
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests for up to -drain, then force-closes stragglers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"predmatch/internal/obs"
	"predmatch/internal/repl"
	"predmatch/internal/server"
	"predmatch/internal/strategy"
	"predmatch/internal/trace"
	"predmatch/internal/wal"
)

func main() {
	addr := flag.String("addr", ":7341", "TCP listen address")
	maxConns := flag.Int("max-conns", 128, "maximum concurrent client connections")
	queue := flag.Int("queue", 1024, "per-connection notification queue capacity")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second, "deadline for writing one frame to a client")
	idleTimeout := flag.Duration("idle-timeout", 0, "close unsubscribed connections idle for this long (0 = never)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget before force-closing connections")
	adminAddr := flag.String("admin", "", "admin HTTP listen address for /metrics, /varz, /healthz and /debug/pprof (empty = disabled)")
	slowReq := flag.Duration("slowreq", 0, "log requests slower than this threshold (0 = disabled)")
	verbose := flag.Bool("v", false, "log connection-level diagnostics (debug level)")
	dataDir := flag.String("data-dir", "", "durable state directory: WAL + snapshots (empty = memory only)")
	fsync := flag.String("fsync", "always", "WAL sync policy: always (fsync before ack), interval (periodic), off (OS decides)")
	fsyncEvery := flag.Duration("fsync-interval", wal.DefaultSyncEvery, "fsync cadence under -fsync interval")
	walSegment := flag.Int64("wal-segment", wal.DefaultSegmentBytes, "target WAL segment size in bytes before rotation")
	snapEvery := flag.Duration("snapshot-every", 0, "background checkpoint cadence (0 = only on shutdown and backup op)")
	follow := flag.String("follow", "", "start as a replication follower of the leader at this address (requires -data-dir)")
	traceSample := flag.Int("trace-sample", 0, "head-sample one in every N requests into the trace flight recorder (0 = only client-initiated and slow traces)")
	traceBuf := flag.Int("trace-buf", 256, "flight recorder capacity in traces")
	indexName := flag.String("index", "ibs", strategy.IndexFlagHelp())
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: predmatchd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// Metrics are always collected: the daemon is the one binary whose
	// instrumentation overhead was budgeted for (see BENCH_PR4.json);
	// -admin only controls whether they are exposed.
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)

	if *indexName != "meta" {
		if _, ok := strategy.CoreOptions(*indexName); !ok {
			fmt.Fprintf(os.Stderr, "predmatchd: %v\n", strategy.UnknownIndexErr(*indexName))
			os.Exit(2)
		}
	}

	cfg := server.Config{
		Addr:         *addr,
		MaxConns:     *maxConns,
		QueueLen:     *queue,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
		Registry:     reg,
		Logger:       logger,
		SlowRequest:  *slowReq,
		// The tracer is always on: client-initiated traces and slow-trace
		// retention work without any flag; -trace-sample adds server-side
		// head sampling on top.
		Tracer: trace.New(trace.Config{
			SampleEvery: *traceSample,
			Slow:        *slowReq,
			Capacity:    *traceBuf,
		}),
	}
	switch *indexName {
	case "ibs":
		// The default keeps the zero-Config behavior (and its
		// instrumented tree counters).
	case "meta":
		// The adaptive engine: warm-up on ibs, migrate per relation as
		// the workload profile dictates.
		ac := strategy.MetaConfig("ibs")
		cfg.Adaptive = &ac
	default:
		// The strategy registry supplies the per-shard attribute index.
		cfg.IndexOptions, _ = strategy.CoreOptions(*indexName)
		cfg.MatcherName = "sharded-" + *indexName
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			logger.Debug(fmt.Sprintf(format, args...))
		}
	}
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predmatchd: %v\n", err)
			os.Exit(2)
		}
		cfg.DataDir = *dataDir
		cfg.Sync = policy
		cfg.SyncEvery = *fsyncEvery
		cfg.WALSegmentBytes = *walSegment
		cfg.SnapshotEvery = *snapEvery
	}
	if *follow != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "predmatchd: -follow requires -data-dir (a follower persists the replicated log)")
			os.Exit(2)
		}
		cfg.FollowerOf = *follow
	}
	srv, err := server.Open(cfg)
	if err != nil {
		logger.Error("recovery", "err", err)
		os.Exit(1)
	}

	// followErr surfaces a fatal replication failure (an apply refusal);
	// stream losses are retried inside the follower, not reported here.
	followErr := make(chan error, 1)
	if *follow != "" {
		f := repl.New(*follow, srv, repl.Options{Logger: logger, Registry: reg})
		srv.AttachFollower(f, f.Stop)
		go func() {
			if err := f.Run(); err != nil {
				followErr <- err
			}
		}()
		logger.Info("following", "leader", *follow)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	go func() {
		// Addr is nil until Serve installs the listener.
		for range 500 {
			if a := srv.Addr(); a != nil {
				logger.Info("listening", "addr", a.String())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	var admin *server.Admin
	adminErr := make(chan error, 1)
	if *adminAddr != "" {
		admin = server.NewAdmin(*adminAddr, reg, srv)
		go func() { adminErr <- admin.ListenAndServe() }()
		go func() {
			for range 500 {
				if a := admin.Addr(); a != nil {
					logger.Info("admin listening", "addr", a.String())
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}

	shutdown := func() int {
		logger.Info("draining", "budget", drain.String())
		sctx, scancel := context.WithTimeout(context.Background(), *drain)
		defer scancel()
		code := 0
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
			code = 1
		}
		<-errc
		if admin != nil {
			// The admin listener stops last so /healthz can report
			// "stopping" for the whole drain window.
			if err := admin.Shutdown(sctx); err != nil {
				logger.Error("admin shutdown", "err", err)
				code = 1
			}
			if err := <-adminErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin", "err", err)
				code = 1
			}
		}
		logger.Info("stopped")
		return code
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, server.ErrServerClosed) {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	case err := <-adminErr:
		// The admin listener failing (port clash, bad address) is fatal:
		// an operator who asked for observability should not get a
		// silently blind daemon.
		logger.Error("admin serve", "err", err)
		os.Exit(1)
	case err := <-followErr:
		// The leader's stream was refused permanently (diverged history,
		// apply failure): a follower serving ever-staler reads while
		// pretending to replicate is worse than a crash.
		logger.Error("replication failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("signal received")
		os.Exit(shutdown())
	}
}
