// Crash-recovery end-to-end test: build the real binary, run it with a
// data directory under -fsync always, SIGKILL it in the middle of a
// mutation stream, restart it on the same directory, and require the
// recovered state to be exactly the acked prefix — every acknowledged
// mutation present, and the single possibly-in-flight request either
// fully applied (ack was written but lost on the wire) or fully absent,
// never partially.
//
// State comparison is deep: both the recovered daemon and an oracle
// daemon (same binary-level code, in-process, fed only acked ops) dump
// a checkpoint via the backup op, and the two snapshots are compared
// structurally — relations, attribute schemas, indexes, tuple IDs, row
// contents, next-ID counters, rules and direct predicates.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/schema"
	"predmatch/internal/server"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wal"
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "predmatchd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one life of the predmatchd process.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches bin with the given data directory and waits for
// its "listening" log line to learn the ephemeral port. Extra flags
// (e.g. -follow for replication tests) are appended.
func startDaemon(t *testing.T, bin, dir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-fsync", "always"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "msg=listening") {
				continue
			}
			for _, f := range strings.Fields(line) {
				if a, ok := strings.CutPrefix(f, "addr="); ok {
					addrc <- a
					return
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &daemon{cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon did not report a listen address")
		return nil
	}
}

func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	d.cmd.Wait()
}

var crashEmpRel = schema.MustRelation("emp",
	schema.Attribute{Name: "name", Type: value.KindString},
	schema.Attribute{Name: "age", Type: value.KindInt},
	schema.Attribute{Name: "salary", Type: value.KindInt},
	schema.Attribute{Name: "dept", Type: value.KindString},
)

var crashAuditRel = schema.MustRelation("audit",
	schema.Attribute{Name: "note", Type: value.KindString},
	schema.Attribute{Name: "level", Type: value.KindInt},
)

// crashOp is one recorded mutation, replayable against the oracle.
type crashOp struct {
	kind string // insert, update, delete
	id   tuple.ID
	tp   tuple.Tuple
}

func (op crashOp) apply(c *client.Client, live *[]tuple.ID) error {
	switch op.kind {
	case "insert":
		id, _, err := c.Insert("emp", op.tp)
		if err != nil {
			return err
		}
		*live = append(*live, id)
		return nil
	case "update":
		_, err := c.Update("emp", op.id, op.tp)
		return err
	default:
		_, err := c.Delete("emp", op.id)
		for i, id := range *live {
			if id == op.id {
				*live = append((*live)[:i], (*live)[i+1:]...)
				break
			}
		}
		return err
	}
}

func randomCrashOp(rng *rand.Rand, live []tuple.ID) crashOp {
	tp := tuple.New(
		value.String_(fmt.Sprintf("w%d", rng.Intn(50))),
		value.Int(int64(20+rng.Intn(50))),
		value.Int(int64(10000+rng.Intn(90000))), // salary > 90000 cascades into audit
		value.String_([]string{"shoe", "toy", "deli"}[rng.Intn(3)]),
	)
	switch {
	case len(live) < 5 || rng.Intn(10) < 6:
		return crashOp{kind: "insert", tp: tp}
	case rng.Intn(3) == 0:
		return crashOp{kind: "delete", id: live[rng.Intn(len(live))]}
	default:
		return crashOp{kind: "update", id: live[rng.Intn(len(live))], tp: tp}
	}
}

var crashRules = []string{
	"rule paid on insert to emp when salary > 90000 do insert into audit ('paid', 2)",
	"rule band on insert, update to emp when salary between 20000 and 30000 do log 'band'",
}

// dumpState forces a checkpoint through the backup op and reads the
// snapshot back as the canonical full-state dump.
func dumpState(t *testing.T, c *client.Client) *wal.Snapshot {
	t.Helper()
	info, err := c.Backup()
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	snap, err := wal.ReadSnapshot(info.Path)
	if err != nil {
		t.Fatalf("read snapshot %s: %v", info.Path, err)
	}
	return snap
}

// comparable strips the fields that legitimately differ between the
// recovered daemon and the oracle (log position, wall clock).
func comparable(s *wal.Snapshot) string {
	c := *s
	c.Seq = 0
	c.TakenUnixNano = 0
	b, err := json.MarshalIndent(&c, "", " ")
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestCrashRecovery is the durability acceptance test (see ISSUE /
// docs/DURABILITY.md): kill -9 mid-stream must lose nothing acked and
// half-apply nothing unacked.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()

	// The oracle: an in-process durable server fed exactly the acked
	// ops. fsync=off — it is never crashed, only compared.
	oracleSrv, err := server.Open(server.Config{
		Addr: "127.0.0.1:0", DataDir: t.TempDir(), Sync: wal.SyncOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	oerrc := make(chan error, 1)
	go func() { oerrc <- oracleSrv.ListenAndServe() }()
	for oracleSrv.Addr() == nil {
		select {
		case err := <-oerrc:
			t.Fatalf("oracle serve: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	defer oracleSrv.Close()
	oracle, err := client.Dial(oracleSrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	d := startDaemon(t, bin, dir)
	c, err := client.Dial(d.addr)
	if err != nil {
		t.Fatal(err)
	}

	// Setup phase, mirrored to the oracle immediately (all acked long
	// before the kill).
	for _, rel := range []*schema.Relation{crashEmpRel, crashAuditRel} {
		if err := c.DeclareRelation(rel); err != nil {
			t.Fatal(err)
		}
		if err := oracle.DeclareRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("emp", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := oracle.CreateIndex("emp", "salary"); err != nil {
		t.Fatal(err)
	}
	for _, src := range crashRules {
		if _, err := c.DefineRule(src); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.DefineRule(src); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var (
		acked    []crashOp // ops the daemon acknowledged
		inflight *crashOp  // the op outstanding when the kill landed
		live     []tuple.ID
	)

	// Mutation stream with a mid-stream backup (exercises checkpointing
	// concurrent with the stream) and a kill timer racing the ops.
	killAt := time.Now().Add(time.Duration(200+rng.Intn(300)) * time.Millisecond)
	killer := time.AfterFunc(time.Until(killAt), func() {
		// Not d.kill: testing.T is not legal off the test goroutine.
		d.cmd.Process.Signal(syscall.SIGKILL)
	})
	defer killer.Stop()

	backupDone := false
	for i := 0; ; i++ {
		if !backupDone && i == 50 {
			if _, err := c.Backup(); err != nil {
				// The kill may land inside the backup call itself.
				inflight = nil
				break
			}
			backupDone = true
		}
		op := randomCrashOp(rng, live)
		if err := op.apply(c, &live); err != nil {
			// Connection died: this op is the (at most one) in-flight
			// request — it may or may not have been applied+logged.
			inflight = &op
			break
		}
		acked = append(acked, op)
		if i > 100000 {
			t.Fatal("kill timer never fired")
		}
	}
	c.Close()
	d.cmd.Wait() // ensure the process is fully gone before restart

	// Feed the oracle every acked op.
	var oracleLive []tuple.ID
	for i, op := range acked {
		if err := op.apply(oracle, &oracleLive); err != nil {
			t.Fatalf("oracle op %d (%s): %v", i, op.kind, err)
		}
	}

	// Restart on the same directory and dump both states.
	d2 := startDaemon(t, bin, dir)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		d2.cmd.Wait()
	}()
	c2, err := client.Dial(d2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	recovered := comparable(dumpState(t, c2))
	want := comparable(dumpState(t, oracle))
	if recovered == want {
		t.Logf("recovered state = acked prefix (%d ops, in-flight op not applied)", len(acked))
		return
	}
	if inflight == nil {
		t.Fatalf("no op was in flight, but recovered state differs from oracle:\n--- recovered ---\n%s\n--- oracle ---\n%s",
			recovered, want)
	}
	// The in-flight op may have been applied and logged before the ack
	// reached us: then the recovered state must be the acked prefix
	// PLUS that whole op (including any rule cascade) — never part of it.
	if err := inflight.apply(oracle, &oracleLive); err != nil {
		t.Fatalf("oracle in-flight op (%s): %v", inflight.kind, err)
	}
	wantPlus := comparable(dumpState(t, oracle))
	if recovered != wantPlus {
		t.Fatalf("recovered state matches neither the acked prefix nor prefix+in-flight (%d acked ops, in-flight %s):\n--- recovered ---\n%s\n--- prefix+in-flight ---\n%s",
			len(acked), inflight.kind, recovered, wantPlus)
	}
	t.Logf("recovered state = acked prefix + in-flight %s (%d acked ops)", inflight.kind, len(acked))
}

// TestCrashRecoveryCorruptTail: garbage appended to the newest segment
// (a torn final write) must be tolerated silently — the daemon starts
// and serves the intact prefix.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()

	d := startDaemon(t, bin, dir)
	c, err := client.Dial(d.addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareRelation(crashEmpRel); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := c.Insert("emp", tuple.New(
			value.String_("w"), value.Int(30), value.Int(1000), value.String_("toy"))); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	d.kill(t)

	// Append a torn half-record to the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := startDaemon(t, bin, dir)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		d2.cmd.Wait()
	}()
	c2, err := client.Dial(d2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Relations) != 1 || st.Relations[0].Rows != 10 {
		t.Fatalf("recovered %+v, want emp with 10 rows", st.Relations)
	}
	// And the daemon keeps working: the log accepts new appends.
	if _, _, err := c2.Insert("emp", tuple.New(
		value.String_("x"), value.Int(31), value.Int(2000), value.String_("deli"))); err != nil {
		t.Fatalf("insert after torn-tail recovery: %v", err)
	}
}
