package main

import (
	"math"
	"testing"
	"time"

	"predmatch/internal/obs"
)

// TestQuantileSmallN pins the percentile block's behavior at the small
// sample counts a short loadgen run produces. Audit conclusion, for
// the record: obs.Histogram.Quantile is a bucketed estimate with
// linear interpolation inside the target bucket (the same estimate
// Prometheus's histogram_quantile computes), NOT nearest-rank over the
// raw samples. At N < 100 this has two visible consequences, both
// pinned here: a single observation still yields p50 < p95 < p99
// (three interpolation points inside one bucket, none of them the
// observed value), and every estimate is bounded by the bucket edges
// around the observations rather than the observations themselves. For
// a load report that's acceptable — the error is at most one bucket
// width — but the numbers must not be read as exact order statistics.
func TestQuantileSmallN(t *testing.T) {
	// N=1: one 3ms observation lands in the (2.5ms, 5ms] bucket.
	// rank = q for every quantile, so each estimate is lo + (hi-lo)*q:
	// interpolation spreads the quantiles across the bucket even though
	// there is only one sample.
	h := obs.NewHistogram(obs.DefBuckets...)
	h.Observe(0.003)
	lo, hi := 2.5e-3, 5e-3
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, durOf(lo + (hi-lo)*0.50)}, // 3.75ms
		{0.95, durOf(lo + (hi-lo)*0.95)}, // 4.875ms
		{0.99, durOf(lo + (hi-lo)*0.99)}, // 4.975ms
	} {
		if got := quantile(h, c.q); got != c.want {
			t.Errorf("N=1: quantile(%.2f) = %s, want %s", c.q, got, c.want)
		}
	}
	if !(quantile(h, 0.50) < quantile(h, 0.95) && quantile(h, 0.95) < quantile(h, 0.99)) {
		t.Error("N=1: quantiles are not strictly increasing")
	}

	// N=2 boundary: with both samples in one bucket, p50's rank (1.0)
	// falls exactly on the first sample's cumulative count, and the
	// interpolation (rank-prev)/count = 1/2 lands mid-bucket.
	h2 := obs.NewHistogram(obs.DefBuckets...)
	h2.Observe(0.003)
	h2.Observe(0.004)
	if got, want := quantile(h2, 0.50), durOf(lo+(hi-lo)*0.5); got != want {
		t.Errorf("N=2: p50 = %s, want %s (mid-bucket)", got, want)
	}

	// N=3 across buckets: the estimate tracks the bucket holding the
	// rank, so p50 stays in the middle sample's bucket and p99 in the
	// top sample's.
	h3 := obs.NewHistogram(obs.DefBuckets...)
	h3.Observe(80e-6) // (50µs, 100µs]
	h3.Observe(0.003) // (2.5ms, 5ms]
	h3.Observe(0.2)   // (100ms, 250ms]
	if got := quantile(h3, 0.50); got <= durOf(2.5e-3) || got > durOf(5e-3) {
		t.Errorf("N=3: p50 = %s, want inside (2.5ms, 5ms]", got)
	}
	if got := quantile(h3, 0.99); got <= durOf(100e-3) || got > durOf(250e-3) {
		t.Errorf("N=3: p99 = %s, want inside (100ms, 250ms]", got)
	}

	// Observations past the last finite bound clamp to it: a report can
	// never print a latency above the histogram's range.
	hInf := obs.NewHistogram(obs.DefBuckets...)
	hInf.Observe(60) // beyond the 10s bound
	if got, want := quantile(hInf, 0.99), durOf(10); got != want {
		t.Errorf("+Inf bucket: p99 = %s, want clamp to %s", got, want)
	}

	// Empty histogram: Quantile is NaN; the duration conversion must
	// not panic (it renders as a garbage-but-stable value only if the
	// report ever prints it, which the count guard prevents — pin the
	// NaN so that guard stays necessary and sufficient).
	empty := obs.NewHistogram(obs.DefBuckets...)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram: Quantile != NaN")
	}
	if empty.Count() != 0 {
		t.Error("empty histogram: Count != 0")
	}
}

// durOf converts seconds to the report's rounded duration form.
func durOf(secs float64) time.Duration {
	return time.Duration(secs * float64(time.Second)).Round(time.Microsecond)
}

// TestSlowestTraced pins the slowest-request tracker: keeps the top
// max by elapsed time, descending, under concurrent adds.
func TestSlowestTraced(t *testing.T) {
	s := &slowestTraced{max: 3}
	for i, d := range []time.Duration{5, 1, 9, 3, 7, 2} {
		s.add(tracedReq{ID: string(rune('a' + i)), Op: "match", Elapsed: d * time.Millisecond})
	}
	got := s.list()
	if len(got) != 3 {
		t.Fatalf("kept %d, want 3", len(got))
	}
	if got[0].Elapsed != 9*time.Millisecond || got[1].Elapsed != 7*time.Millisecond ||
		got[2].Elapsed != 5*time.Millisecond {
		t.Errorf("top-3 = %v", got)
	}
}

// TestParsePhases pins the -phases flag grammar: the default steady
// mix, the three named phases in order, and rejection of unknown names.
func TestParsePhases(t *testing.T) {
	steady, err := parsePhases(" ")
	if err != nil || len(steady) != 1 || steady[0].name != "steady" {
		t.Fatalf("default phases = %+v, %v", steady, err)
	}
	if m := steady[0].mix; m.insert+m.update+m.delete != 80 || m.churn != 0 {
		t.Fatalf("steady mix changed: %+v", m)
	}
	specs, err := parsePhases("read-heavy, write-heavy,mixed")
	if err != nil || len(specs) != 3 {
		t.Fatalf("parsePhases = %+v, %v", specs, err)
	}
	for i, want := range []string{"read-heavy", "write-heavy", "mixed"} {
		if specs[i].name != want {
			t.Fatalf("phase %d = %q, want %q", i, specs[i].name, want)
		}
	}
	// Read-heavy is probe-dominated; write-heavy churns predicates.
	if m := specs[0].mix; m.insert+m.update+m.delete+m.churn >= 20 {
		t.Fatalf("read-heavy mix not probe-dominated: %+v", m)
	}
	if specs[1].mix.churn == 0 {
		t.Fatal("write-heavy phase has no predicate churn")
	}
	if _, err := parsePhases("read-heavy,bogus"); err == nil {
		t.Fatal("unknown phase accepted")
	}
}
