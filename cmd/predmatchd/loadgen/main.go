// Command loadgen drives a predmatchd daemon with a synthetic rule
// workload and reports throughput. It declares an EMP-style relation,
// defines a handful of rules with varied selectivity, starts one
// subscriber draining the notification stream, and runs N workers each
// streaming a deterministic mix of inserts, updates, deletes and match
// probes over its own connection.
//
// Usage:
//
//	loadgen [-addr 127.0.0.1:7341 | -self] [-workers 4] [-duration 2s]
//	        [-seed 1] [-suffix s] [-followers addr1,addr2]
//	        [-trace-every 64] [-phases read-heavy,write-heavy,mixed]
//
// -phases splits -duration into equal consecutive phases, each shifting
// the request mix: read-heavy is almost all match probes, write-heavy
// is mutations plus predicate churn (addpred/rmpred pairs, the
// structural index writes), mixed sits in between. The report then
// breaks latency and throughput out per phase. This is the workload
// that exercises `predmatchd -index meta`: the shifting stab/write mix
// forces the adaptive engine through at least one online migration
// (watch predmatch_meta_migrations_total, or `predmatch stats`).
//
// With -self, loadgen starts an in-process daemon on a loopback port
// and tears it down afterwards — a single-binary smoke test. The target
// daemon must not already hold the relations/rules loadgen declares;
// use -suffix to namespace them when sharing a daemon.
//
// Every -trace-every'th request per worker carries a client-minted
// trace context, so the daemon traces it end to end regardless of its
// own sampling; the report lists the slowest traced requests with
// their trace ids, ready to paste into `predmatch trace -id` or the
// daemon's /traces endpoint.
//
// With -followers, match probes are split round-robin across the given
// replica addresses instead of the leader, each probe carrying the
// worker's read-your-writes token (min_seq = the last acked WAL
// sequence), and the report breaks read latency out per target — the
// follower-read scaling measurement behind BENCH_PR7.json.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/interval"
	"predmatch/internal/obs"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/server"
	"predmatch/internal/strategy"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7341", "daemon address to drive")
	self := flag.Bool("self", false, "start an in-process daemon on a loopback port instead of dialing -addr")
	selfIndex := flag.String("index", "", "with -self: the daemon's per-shard index structure, or meta for the adaptive engine (same values as predmatchd -index)")
	workers := flag.Int("workers", 4, "concurrent mutation/match workers, one connection each")
	duration := flag.Duration("duration", 2*time.Second, "how long to stream load")
	seed := flag.Int64("seed", 1, "base seed for the deterministic workload")
	suffix := flag.String("suffix", "", "suffix for relation and rule names (namespacing a shared daemon)")
	followersFlag := flag.String("followers", "", "comma-separated follower addresses: match probes round-robin across them with read-your-writes tokens; mutations stay on -addr")
	traceEvery := flag.Int("trace-every", 64, "send a trace context on every Nth request per worker (0 = never)")
	phasesFlag := flag.String("phases", "", "comma-separated workload phases (read-heavy, write-heavy, mixed) run consecutively over -duration; empty = the steady default mix")
	preds := flag.Int("preds", -1, "standing direct predicates registered at setup (-1 = auto: 64 with -phases, else 0)")
	flag.Parse()

	logger := log.New(os.Stderr, "loadgen: ", 0)

	specs, err := parsePhases(*phasesFlag)
	if err != nil {
		logger.Fatal(err)
	}
	if *preds < 0 {
		// A phase-shifting run exists to exercise the adaptive engine,
		// and its decisions only engage past the warm-up predicate count;
		// seed a standing population like a real rule system would have.
		if len(specs) > 1 {
			*preds = 64
		} else {
			*preds = 0
		}
	}

	target := *addr
	var srv *server.Server
	if *self {
		cfg := server.Config{Addr: "127.0.0.1:0", MaxConns: *workers + 8}
		switch *selfIndex {
		case "", "ibs":
		case "meta":
			ac := strategy.MetaConfig("ibs")
			cfg.Adaptive = &ac
		default:
			opts, ok := strategy.CoreOptions(*selfIndex)
			if !ok {
				logger.Fatalf("%v", strategy.UnknownIndexErr(*selfIndex))
			}
			cfg.IndexOptions = opts
			cfg.MatcherName = "sharded-" + *selfIndex
		}
		srv = server.New(cfg)
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe() }()
		for srv.Addr() == nil {
			select {
			case err := <-errc:
				logger.Fatalf("self-hosted daemon: %v", err)
			default:
				time.Sleep(5 * time.Millisecond)
			}
		}
		target = srv.Addr().String()
		logger.Printf("self-hosted daemon on %s", target)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				logger.Fatalf("shutdown: %v", err)
			}
		}()
	}

	emp := "emp" + *suffix
	audit := "audit" + *suffix
	empRel := schema.MustRelation(emp,
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt},
		schema.Attribute{Name: "dept", Type: value.KindString},
	)
	auditRel := schema.MustRelation(audit,
		schema.Attribute{Name: "note", Type: value.KindString},
		schema.Attribute{Name: "level", Type: value.KindInt},
	)
	rules := []string{
		fmt.Sprintf("rule band%s on insert, update to %s when salary between 20000 and 30000 do log 'band'", *suffix, emp),
		fmt.Sprintf("rule senior%s on insert to %s when age > 50 do log 'senior'", *suffix, emp),
		fmt.Sprintf("rule cheap%s on delete to %s when salary < 25000 do log 'cheap'", *suffix, emp),
		fmt.Sprintf("rule paid%s on insert to %s when salary > 90000 do insert into %s ('paid', 2)", *suffix, emp, audit),
		fmt.Sprintf("rule loud%s on insert to %s when level > 1 do log 'loud'", *suffix, audit),
	}

	admin, err := client.Dial(target)
	if err != nil {
		logger.Fatalf("dial %s: %v", target, err)
	}
	defer admin.Close()
	for _, rel := range []*schema.Relation{empRel, auditRel} {
		if err := admin.DeclareRelation(rel); err != nil {
			logger.Fatalf("declare %s: %v", rel.Name(), err)
		}
	}
	if err := admin.CreateIndex(emp, "salary"); err != nil {
		logger.Fatalf("index: %v", err)
	}
	for _, src := range rules {
		if _, err := admin.DefineRule(src); err != nil {
			logger.Fatalf("rule: %v", err)
		}
	}
	// Standing predicate population: varied salary bands, registered once
	// and never removed — the index these predicates live in is what the
	// adaptive engine migrates under the phase shifts.
	setupRng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *preds; i++ {
		lo := int64(10000 + setupRng.Intn(80000))
		p := pred.New(0, emp, pred.IvClause("salary",
			interval.Closed(value.Int(lo), value.Int(lo+int64(1000+setupRng.Intn(20000))))))
		if _, err := admin.AddPredicate(p); err != nil {
			logger.Fatalf("predicate %d: %v", i, err)
		}
	}

	// Subscriber draining everything the daemon streams.
	sub, err := client.Dial(target, client.WithNotifyBuffer(1<<14))
	if err != nil {
		logger.Fatalf("dial subscriber: %v", err)
	}
	defer sub.Close()
	notes, err := sub.Subscribe(false)
	if err != nil {
		logger.Fatalf("subscribe: %v", err)
	}
	var received atomic.Uint64
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for range notes {
			received.Add(1)
		}
	}()

	var (
		mutations atomic.Uint64
		probes    atomic.Uint64
		matched   atomic.Uint64
		churns    atomic.Uint64
		errs      atomic.Uint64
	)
	// Per-phase accounting: workers read the current phase index and
	// charge each request to its phase's counters and histogram.
	var phaseIdx atomic.Int32
	pcs := make([]*phaseCounters, len(specs))
	for i := range pcs {
		pcs[i] = &phaseCounters{lat: obs.NewHistogram(obs.DefBuckets...)}
	}
	// Read targets: the leader itself, or the follower fleet. Each gets
	// its own latency histogram so per-replica tail latency is visible.
	var followers []string
	for _, a := range strings.Split(*followersFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			followers = append(followers, a)
		}
	}
	readTargets := []string{target}
	if len(followers) > 0 {
		readTargets = followers
	}
	readLat := make(map[string]*obs.Histogram, len(readTargets))
	for _, a := range readTargets {
		readLat[a] = obs.NewHistogram(obs.DefBuckets...)
	}

	// One shared request-latency histogram across all workers; obs
	// histograms are lock-free, so contention is a few atomic adds.
	lat := obs.NewHistogram(obs.DefBuckets...)
	slowest := &slowestTraced{max: 5}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(target)
			if err != nil {
				logger.Printf("worker %d: dial: %v", w, err)
				errs.Add(1)
				return
			}
			defer c.Close()
			// One read connection per target; probes rotate across them.
			readers := make([]*client.Client, len(readTargets))
			for i, a := range readTargets {
				if a == target {
					readers[i] = c
					continue
				}
				rc, err := client.Dial(a)
				if err != nil {
					logger.Printf("worker %d: dial follower %s: %v", w, a, err)
					errs.Add(1)
					return
				}
				defer rc.Close()
				readers[i] = rc
			}
			nextRead := 0
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			var live []tuple.ID
			var reqN int
			for {
				select {
				case <-stop:
					return
				default:
				}
				tp := randomEmp(rng)
				// Every Nth request carries a worker-minted trace context;
				// arm() attaches it to whichever connection the branch uses.
				var traceID, tracedOp string
				if *traceEvery > 0 {
					if reqN++; reqN%*traceEvery == 0 {
						id := rng.Uint64()
						if id == 0 {
							id = 1
						}
						traceID = trace.FormatID(id)
					}
				}
				arm := func(tc *client.Client, op string) {
					if traceID != "" {
						tracedOp = op
						tc.TraceNext(&wire.TraceContext{ID: traceID})
					}
				}
				pi := int(phaseIdx.Load())
				mix, pc := specs[pi].mix, pcs[pi]
				var err error
				t0 := time.Now()
				switch r := rng.Intn(100); {
				case r < mix.insert || len(live) < 5: // insert
					arm(c, "insert")
					var id tuple.ID
					id, _, err = c.Insert(emp, tp)
					if err == nil {
						live = append(live, id)
						mutations.Add(1)
						pc.mutations.Add(1)
					}
				case r < mix.insert+mix.update: // update
					arm(c, "update")
					_, err = c.Update(emp, live[rng.Intn(len(live))], tp)
					if err == nil {
						mutations.Add(1)
						pc.mutations.Add(1)
					}
				case r < mix.insert+mix.update+mix.delete: // delete
					arm(c, "delete")
					k := rng.Intn(len(live))
					_, err = c.Delete(emp, live[k])
					if err == nil {
						live = append(live[:k], live[k+1:]...)
						mutations.Add(1)
						pc.mutations.Add(1)
					}
				case r < mix.insert+mix.update+mix.delete+mix.churn:
					// Predicate churn: an addpred/rmpred pair — the structural
					// index write that a write-heavy phase uses to push the
					// adaptive engine toward a write-friendly structure.
					arm(c, "addpred")
					var id pred.ID
					id, err = c.AddPredicate(pred.New(0, emp, pred.IvClause("salary",
						interval.AtLeast(value.Int(int64(10000+rng.Intn(90000)))))))
					if err == nil {
						err = c.RemovePredicate(id)
					}
					if err == nil {
						churns.Add(1)
						pc.churn.Add(1)
					}
				default: // match probe (lock-free path)
					k := nextRead % len(readers)
					nextRead++
					arm(readers[k], "match")
					// The token makes a follower read wait for this worker's
					// own acked writes — stale answers would undercount hits.
					var res []pred.ID
					res, err = readers[k].MatchAt(emp, tp, c.LastSeq())
					if err == nil {
						probes.Add(1)
						pc.probes.Add(1)
						matched.Add(uint64(len(res)))
						readLat[readTargets[k]].ObserveSince(t0)
					}
				}
				if err != nil {
					select {
					case <-stop:
					default:
						logger.Printf("worker %d: %v", w, err)
						errs.Add(1)
					}
					return
				}
				if traceID != "" {
					slowest.add(tracedReq{ID: traceID, Op: tracedOp, Elapsed: time.Since(t0)})
				}
				lat.ObserveSince(t0)
				pc.lat.ObserveSince(t0)
			}
		}(w)
	}

	start := time.Now()
	per := *duration / time.Duration(len(specs))
	for i := range specs {
		phaseIdx.Store(int32(i))
		time.Sleep(per)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	generated, dropped, err := sub.Unsubscribe()
	if err != nil {
		logger.Fatalf("unsubscribe: %v", err)
	}
	// Already-queued notifications may still trail in; give them a
	// bounded moment, then snapshot.
	flush := time.After(2 * time.Second)
	for received.Load() < generated-dropped {
		select {
		case <-flush:
			goto report
		default:
			sub.Ping()
			time.Sleep(10 * time.Millisecond)
		}
	}
report:
	st, err := admin.Stats()
	if err != nil {
		logger.Fatalf("stats: %v", err)
	}

	muts, prb := mutations.Load(), probes.Load()
	fmt.Printf("loadgen: %d workers, %s\n", *workers, elapsed.Round(time.Millisecond))
	fmt.Printf("  mutations   %8d  (%.0f/s)\n", muts, float64(muts)/elapsed.Seconds())
	fmt.Printf("  match probes%8d  (%.0f/s), %d predicate hits\n", prb, float64(prb)/elapsed.Seconds(), matched.Load())
	if n := churns.Load(); n > 0 {
		fmt.Printf("  pred churn  %8d  (%.0f/s) addpred/rmpred pairs\n", n, float64(n)/elapsed.Seconds())
	}
	fmt.Printf("  latency     p50 %s  p95 %s  p99 %s  (%d requests)\n",
		quantile(lat, 0.50), quantile(lat, 0.95), quantile(lat, 0.99), lat.Count())
	if len(specs) > 1 {
		fmt.Printf("  phases (%s each):\n", per.Round(time.Millisecond))
		for i, sp := range specs {
			pc := pcs[i]
			fmt.Printf("    %-12s mut %6d  churn %5d  probes %7d  p50 %s  p95 %s  p99 %s\n",
				sp.name, pc.mutations.Load(), pc.churn.Load(), pc.probes.Load(),
				quantile(pc.lat, 0.50), quantile(pc.lat, 0.95), quantile(pc.lat, 0.99))
		}
	}
	if rs := slowest.list(); len(rs) > 0 {
		fmt.Printf("  slowest traced requests (pull spans with `predmatch trace -id <id>`):\n")
		for _, r := range rs {
			fmt.Printf("    %s  %-6s  %s\n", r.ID, r.Op, r.Elapsed.Round(time.Microsecond))
		}
	}
	if len(followers) > 0 {
		fmt.Printf("  follower reads:\n")
		for _, a := range readTargets {
			h := readLat[a]
			fmt.Printf("    %-22s p50 %s  p95 %s  p99 %s  (%d probes)\n",
				a, quantile(h, 0.50), quantile(h, 0.95), quantile(h, 0.99), h.Count())
		}
	}
	if st.Meta != nil {
		var migs uint64
		for _, d := range st.Meta.Rels {
			migs += d.Migrations
		}
		fmt.Printf("  adaptive    %d online migrations (default %s)\n", migs, st.Meta.Default)
		for _, d := range st.Meta.Rels {
			if d.Reason != "" {
				fmt.Printf("    relation %s: %s\n", d.Rel, d.Reason)
			}
		}
	}
	fmt.Printf("  firings     %8d generated, %d received, %d dropped\n", generated, received.Load(), dropped)
	fmt.Printf("  server      %d rules, %d predicates, %d conns, matcher %s\n",
		len(st.Rules), st.Predicates, st.Conns, st.Matcher)
	if generated != received.Load()+dropped {
		logger.Printf("warning: %d notifications unaccounted for (still queued?)",
			generated-received.Load()-dropped)
	}
	if err := errors.Join(admin.Err(), sub.Err()); err != nil {
		logger.Fatalf("connection error: %v", err)
	}
	if n := errs.Load(); n > 0 {
		logger.Printf("%d request errors", n)
		os.Exit(1)
	}
}

// opMix is a request-mix as percentage thresholds over [0,100); the
// remainder after insert+update+delete+churn is match probes.
type opMix struct {
	insert, update, delete, churn int
}

// phaseSpec names one workload phase and its mix.
type phaseSpec struct {
	name string
	mix  opMix
}

// phaseCounters is one phase's throughput and latency accounting.
type phaseCounters struct {
	mutations atomic.Uint64
	probes    atomic.Uint64
	churn     atomic.Uint64
	lat       *obs.Histogram
}

// parsePhases resolves the -phases flag. Empty means one steady phase
// with the classic mix (50/20/10 mutations, 20 match).
func parsePhases(s string) ([]phaseSpec, error) {
	if strings.TrimSpace(s) == "" {
		return []phaseSpec{{name: "steady", mix: opMix{insert: 50, update: 20, delete: 10}}}, nil
	}
	var specs []phaseSpec
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "read-heavy":
			specs = append(specs, phaseSpec{name, opMix{insert: 5, update: 2, delete: 1}})
		case "write-heavy":
			// Heavy on mutations and on predicate churn: the structural
			// index writes that make a read-optimized structure expensive.
			specs = append(specs, phaseSpec{name, opMix{insert: 35, update: 15, delete: 10, churn: 30}})
		case "mixed":
			specs = append(specs, phaseSpec{name, opMix{insert: 25, update: 10, delete: 5, churn: 10}})
		default:
			return nil, fmt.Errorf("loadgen: unknown phase %q (want read-heavy, write-heavy or mixed)", name)
		}
	}
	return specs, nil
}

// quantile renders a histogram quantile estimate as a duration.
func quantile(h *obs.Histogram, q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Second)).Round(time.Microsecond)
}

// tracedReq is one traced request's identity and latency.
type tracedReq struct {
	ID      string
	Op      string
	Elapsed time.Duration
}

// slowestTraced keeps the max slowest traced requests seen across all
// workers, so the report can surface their trace ids next to the
// percentile block.
type slowestTraced struct {
	mu   sync.Mutex
	max  int
	reqs []tracedReq // guarded-by: mu (sorted slowest first, len <= max)
}

func (s *slowestTraced) add(r tracedReq) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reqs = append(s.reqs, r)
	sort.Slice(s.reqs, func(i, j int) bool { return s.reqs[i].Elapsed > s.reqs[j].Elapsed })
	if len(s.reqs) > s.max {
		s.reqs = s.reqs[:s.max]
	}
}

func (s *slowestTraced) list() []tracedReq {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]tracedReq(nil), s.reqs...)
}

func randomEmp(rng *rand.Rand) tuple.Tuple {
	return tuple.New(
		value.String_(fmt.Sprintf("w%d", rng.Intn(50))),
		value.Int(int64(20+rng.Intn(50))),
		value.Int(int64(10000+rng.Intn(90000))),
		value.String_([]string{"shoe", "toy", "deli"}[rng.Intn(3)]),
	)
}
