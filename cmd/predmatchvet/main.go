// Command predmatchvet is the repository's static-analysis suite: a
// multichecker that machine-checks the concurrency and mark-discipline
// invariants the hot path relies on (see docs/INVARIANTS.md).
//
// Run it standalone over package patterns:
//
//	go run ./cmd/predmatchvet ./...
//
// or install it and let the go command drive it over every package and
// test variant:
//
//	go build -o "$(go env GOPATH)/bin/predmatchvet" ./cmd/predmatchvet
//	go vet -vettool="$(which predmatchvet)" ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or internal error. Findings
// can be suppressed case by case with
//
//	//predmatchvet:ignore <analyzer> <reason>
//
// on the flagged line or the line above it.
package main

import (
	"predmatch/internal/analysis"
	"predmatch/internal/analysis/atomicpub"
	"predmatch/internal/analysis/guardedby"
	"predmatch/internal/analysis/lockorder"
	"predmatch/internal/analysis/markdiscipline"
	"predmatch/internal/analysis/snapshotmut"
	"predmatch/internal/analysis/walack"
	"predmatch/internal/analysis/wireexhaustive"
)

func main() {
	analysis.Main(
		atomicpub.Analyzer,
		guardedby.Analyzer,
		lockorder.Analyzer,
		markdiscipline.Analyzer,
		snapshotmut.Analyzer,
		walack.Analyzer,
		wireexhaustive.Analyzer,
	)
}
