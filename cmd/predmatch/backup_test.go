package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predmatch/internal/client"
	"predmatch/internal/schema"
	"predmatch/internal/server"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wal"
	"predmatch/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestPrintSnapshotGolden pins the `predmatch restore` inspection
// rendering against a representative checkpoint.
func TestPrintSnapshotGolden(t *testing.T) {
	snap := &wal.Snapshot{
		Version:       1,
		Seq:           42,
		TakenUnixNano: 1700000000000000000, // 2023-11-14T22:13:20Z
		Relations: []wal.SnapRelation{
			{
				Name: "emp",
				Attrs: []wire.Attr{
					{Name: "name", Type: "string"}, {Name: "age", Type: "int"},
					{Name: "salary", Type: "int"}, {Name: "dept", Type: "string"},
				},
				NextID:  4,
				Indexes: []string{"salary"},
				Rows: []wal.SnapRow{
					{ID: 1, Tuple: []any{"ada", 52, 18000, "deli"}},
					{ID: 2, Tuple: []any{"bob", 33, 25000, "shoe"}},
					{ID: 3, Tuple: []any{"cyd", 41, 90000, "toy"}},
				},
			},
			{
				Name: "audit",
				Attrs: []wire.Attr{
					{Name: "note", Type: "string"}, {Name: "level", Type: "int"},
				},
				NextID: 1,
			},
		},
		Rules: []string{
			"rule band on insert, update to emp when salary between 20000 and 30000 do log 'band'",
			"rule paid on insert to emp when salary > 90000 do insert into audit ('paid', 2)",
		},
		Preds:      []wal.SnapPred{{ID: 1 << 32}},
		NextPredID: 1<<32 + 1,
	}
	var b strings.Builder
	printSnapshot(&b, snap)
	checkGolden(t, "restore_summary.golden", b.String())
}

// TestBackupRestoreRoundTrip is the end-to-end ops flow: populate a
// durable daemon, `backup -o` a checkpoint out, `restore -data-dir`
// it into a fresh directory, and recover a second daemon from that
// directory with identical state.
func TestBackupRestoreRoundTrip(t *testing.T) {
	srcDir, dstDir := t.TempDir(), filepath.Join(t.TempDir(), "restored")
	srv, err := server.Open(server.Config{
		Addr: "127.0.0.1:0", DataDir: srcDir, Sync: wal.SyncOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	for srv.Addr() == nil {
		select {
		case err := <-errc:
			t.Fatalf("serve: %v", err)
		default:
		}
	}
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareRelation(testEmpRel); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineRule(
		"rule band on insert to emp when salary between 20000 and 30000 do log 'band'"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.Insert("emp", tuple.New(
			value.String_("w"), value.Int(30), value.Int(25000), value.String_("toy"))); err != nil {
			t.Fatal(err)
		}
	}

	ckpt := filepath.Join(t.TempDir(), "out.ckpt")
	if code := runBackup([]string{"-addr", srv.Addr().String(), "-o", ckpt}); code != 0 {
		t.Fatalf("runBackup exited %d", code)
	}
	c.Close()
	srv.Close()

	if code := runRestore([]string{"-data-dir", dstDir, ckpt}); code != 0 {
		t.Fatalf("runRestore exited %d", code)
	}
	// Restoring over the now-populated directory must refuse.
	if code := runRestore([]string{"-data-dir", dstDir, ckpt}); code == 0 {
		t.Fatal("restore over existing durable state succeeded")
	}
	// A corrupt checkpoint must be rejected before anything is written.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runRestore([]string{"-data-dir", filepath.Join(t.TempDir(), "x"), bad}); code == 0 {
		t.Fatal("restore accepted a corrupt checkpoint")
	}

	// The restored directory serves the original state.
	srv2, err := server.Open(server.Config{
		Addr: "127.0.0.1:0", DataDir: dstDir, Sync: wal.SyncOff,
	})
	if err != nil {
		t.Fatalf("open restored dir: %v", err)
	}
	errc2 := make(chan error, 1)
	go func() { errc2 <- srv2.ListenAndServe() }()
	for srv2.Addr() == nil {
		select {
		case err := <-errc2:
			t.Fatalf("serve restored: %v", err)
		default:
		}
	}
	defer srv2.Close()
	c2, err := client.Dial(srv2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Relations) != 1 || st.Relations[0].Rows != 5 || st.Relations[0].NextID != 6 {
		t.Fatalf("restored relations = %+v, want emp 5 rows next id 6", st.Relations)
	}
	if len(st.Rules) != 1 {
		t.Fatalf("restored rules = %v", st.Rules)
	}
}

var testEmpRel = schema.MustRelation("emp",
	schema.Attribute{Name: "name", Type: value.KindString},
	schema.Attribute{Name: "age", Type: value.KindInt},
	schema.Attribute{Name: "salary", Type: value.KindInt},
	schema.Attribute{Name: "dept", Type: value.KindString},
)
