package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"predmatch/internal/client"
	"predmatch/internal/wire"
)

// runStats implements `predmatch stats`: dial a running predmatchd,
// fetch its stats frame, and render it — shard and IBS-tree shape plus
// the per-connection queue breakdown that shows which subscriber is
// falling behind. This is the remote counterpart of the script
// interpreter's local `stats` statement.
func runStats(args []string) int {
	fs := flag.NewFlagSet("predmatch stats", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7341", "predmatchd address to query")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: predmatch stats [-addr host:port]")
		return 2
	}
	c, err := client.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatch stats: dial %s: %v\n", *addr, err)
		return 1
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatch stats: %v\n", err)
		return 1
	}
	printStats(os.Stdout, st)
	return 0
}

// printStats renders one stats frame in the interpreter's table style.
func printStats(w io.Writer, st *wire.Stats) {
	fmt.Fprintf(w, "matcher %s: %d predicates, %d rules\n",
		st.Matcher, st.Predicates, len(st.Rules))
	fmt.Fprintf(w, "conns %d (%d subscribed), notifications %d delivered / %d dropped\n",
		st.Conns, st.Subs, st.Delivered, st.Dropped)
	if st.Prefilter != nil {
		total := st.Prefilter.Admitted + st.Prefilter.Skipped
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.Prefilter.Skipped) / float64(total)
		}
		fmt.Fprintf(w, "prefilter: %d admitted / %d skipped (%.1f%% of tuples bypassed the index)\n",
			st.Prefilter.Admitted, st.Prefilter.Skipped, pct)
	}
	if len(st.Profiles) > 0 {
		fmt.Fprintf(w, "workload profile:\n")
		fmt.Fprintf(w, "  %-12s %8s %8s %9s %8s %10s  %s\n",
			"rel", "stabs", "skipped", "results", "writes", "stab avg", "queried attrs")
		for _, p := range st.Profiles {
			avg := "-"
			if p.Stabs > 0 {
				avg = fmt.Sprintf("%.1fµs", p.StabSecs/float64(p.Stabs)*1e6)
			}
			attrs := "-"
			if len(p.Attrs) > 0 {
				var parts []string
				for _, a := range p.Attrs {
					if a.Queried > 0 {
						parts = append(parts, fmt.Sprintf("%s=%d", a.Name, a.Queried))
					}
				}
				if len(parts) > 0 {
					attrs = strings.Join(parts, " ")
				}
			}
			fmt.Fprintf(w, "  %-12s %8d %8d %9d %8d %10s  %s\n",
				p.Rel, p.Stabs, p.Skipped, p.Results, p.Writes, avg, attrs)
		}
	}
	if len(st.Shards) > 0 {
		fmt.Fprintf(w, "shards:\n")
		for _, sh := range st.Shards {
			fmt.Fprintf(w, "  %-12s %6d predicates  version %d", sh.Rel, sh.Predicates, sh.Version)
			if sh.Structure != "" {
				fmt.Fprintf(w, "  structure %s", sh.Structure)
			}
			fmt.Fprintf(w, "\n")
		}
	}
	if st.Meta != nil {
		fmt.Fprintf(w, "adaptive index (default %s):\n", st.Meta.Default)
		for _, d := range st.Meta.Rels {
			// The reason is the decision sentence ("hint, because
			// stab-heavy/low-write (…), est 0.3µs vs 2.1µs (ibs)"); it
			// leads with the chosen structure, so the row only prefixes
			// the relation and appends migration history.
			why := d.Reason
			if why == "" {
				why = d.Structure
			}
			fmt.Fprintf(w, "  relation %s: %s", d.Rel, why)
			if d.Migrations > 0 {
				fmt.Fprintf(w, " [%d migrations, resident %.0fs]", d.Migrations, d.SinceSecs)
			}
			fmt.Fprintf(w, "\n")
		}
	}
	if len(st.Trees) > 0 {
		fmt.Fprintf(w, "ibs trees:\n")
		fmt.Fprintf(w, "  %-12s %-12s %9s %6s %8s %7s\n",
			"rel", "attr", "intervals", "nodes", "markers", "height")
		for _, t := range st.Trees {
			fmt.Fprintf(w, "  %-12s %-12s %9d %6d %8d %7d\n",
				t.Rel, t.Attr, t.Intervals, t.Nodes, t.Markers, t.Height)
		}
	}
	if len(st.Relations) > 0 {
		fmt.Fprintf(w, "relations:\n")
		for _, r := range st.Relations {
			fmt.Fprintf(w, "  %-12s %6d rows  next id %d\n", r.Name, r.Rows, r.NextID)
		}
	}
	if st.WAL != nil {
		fmt.Fprintf(w, "wal: sync=%s, seq %d (%d durable), %d segments",
			st.WAL.Sync, st.WAL.LastSeq, st.WAL.DurableSeq, st.WAL.Segments)
		if st.WAL.SnapshotSeq > 0 {
			fmt.Fprintf(w, ", snapshot at seq %d", st.WAL.SnapshotSeq)
		}
		fmt.Fprintf(w, "\n")
	}
	if st.Repl != nil {
		switch st.Repl.Role {
		case "follower":
			fmt.Fprintf(w, "replication: follower of %s, applied seq %d, lag %d",
				st.Repl.Leader, st.Repl.AppliedSeq, st.Repl.Lag)
			if st.Repl.Reconnects > 0 {
				fmt.Fprintf(w, ", %d reconnects", st.Repl.Reconnects)
			}
			fmt.Fprintf(w, "\n")
		default:
			fmt.Fprintf(w, "replication: leader, %d followers connected\n", st.Repl.Followers)
		}
	}
	if len(st.Connections) > 0 {
		fmt.Fprintf(w, "connections:\n")
		fmt.Fprintf(w, "  %-22s %5s %9s %9s %8s %8s\n",
			"remote", "queue", "delivered", "dropped", "lastseq", "rules")
		for _, cs := range st.Connections {
			rules := "-"
			if cs.Subscribed {
				rules = "all"
				if len(cs.Rules) > 0 {
					rules = fmt.Sprintf("%d", len(cs.Rules))
				}
			}
			if cs.Replica {
				// A replication stream: the marker carries the follower's
				// shipped-up-to sequence instead of subscription state.
				rules = fmt.Sprintf("repl@%d", cs.ReplSeq)
			}
			fmt.Fprintf(w, "  %-22s %2d/%-3d %9d %9d %8d %8s\n",
				cs.Remote, cs.Queue, cs.QueueCap, cs.Delivered,
				cs.Dropped, cs.LastSeq, rules)
		}
	}
}
