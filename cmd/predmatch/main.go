// Command predmatch runs database-rule scripts through the predicate
// matching engine: declare relations and indexes, define prioritized
// rules (with arithmetic set actions and disjunctive conditions) and
// two-relation joinrules, stream tuple mutations, run planned selects,
// and watch rules fire. The matching strategy is selectable, covering
// the paper's baselines and the IBS-tree scheme. See internal/script for
// the statement grammar.
//
// Usage:
//
//	predmatch [-matcher NAME] [script.pm ...]
//
// NAME is any strategy registered in internal/strategy (run -h for the
// current list: the paper's IBS scheme, the HINT flat hierarchy, and
// the baseline and serving-layer matchers).
//
// With no script arguments, statements are read from standard input.
// Run with -demo for a built-in scenario based on the paper's EMP
// examples.
//
// Five subcommands talk to a running or durable daemon instead of
// executing a script:
//
//	predmatch stats [-addr 127.0.0.1:7341]
//	predmatch backup [-addr 127.0.0.1:7341] [-o file]
//	predmatch restore [-data-dir dir] snapshot.ckpt
//	predmatch promote [-addr 127.0.0.1:7341]
//	predmatch trace [-admin 127.0.0.1:7342] [-id trace-id] [-slow] [-json]
//
// stats prints shard, IBS-tree, relation, workload-profile, WAL,
// replication and per-connection statistics (the remote form of the
// script interpreter's local `stats` statement). backup forces a
// checkpoint on a running daemon; restore inspects a checkpoint file
// and optionally seeds a fresh data directory from it (see
// docs/DURABILITY.md). promote turns a replication follower into a
// leader (see docs/REPLICATION.md). trace pulls request traces from
// the daemon's flight recorder over the admin listener (see
// docs/OBSERVABILITY.md, "Tracing").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/script"
	"predmatch/internal/storage"
	"predmatch/internal/strategy"
)

const demo = `
# Demo: the paper's EMP relation and example predicates as live rules.
relation emp (name string, age int, salary int, dept string)
index emp salary

rule low_paid_senior on insert to emp \
  when salary < 20000 and age > 50 do log 'flag: low paid senior'
rule mid_band on insert, update to emp \
  when salary between 20000 and 30000 do log 'mid salary band'
rule odd_shoe on insert to emp \
  when isodd(age) and dept = 'shoe' do log 'odd-aged shoe dept'
rule no_kids on insert to emp \
  when age < 16 do raise 'labor law violation'

insert emp ('ada', 52, 18000, 'deli')
insert emp ('bob', 33, 25000, 'shoe')
insert emp ('cyd', 41, 90000, 'toy')
update emp 3 ('cyd', 41, 28000, 'toy')

# Queries run through the System R style planner.
select emp where salary between 20000 and 30000
select emp where age > 50 or isodd(age)

# A two-relation rule through the two-layer network (selection + join).
relation dept (dname string, budget int)
joinrule underfunded on emp, dept \
  when salary > 25000 and emp.dept = dname and budget < 100000 \
  do log 'well-paid employee in underfunded department'
insert dept ('toy', 50000)

dump emp
stats
`

// matcherFactory resolves a strategy name through the shared registry
// (internal/strategy) — the same list predmatchd and the conformance
// sweep consume, so the flag help can never go stale.
func matcherFactory(name string) (func(*storage.DB, *pred.Registry) matcher.Matcher, error) {
	in, ok := strategy.Lookup(name)
	if !ok {
		return nil, strategy.UnknownErr(name)
	}
	return func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
		return in.New(db.Catalog(), funcs)
	}, nil
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "stats":
			os.Exit(runStats(os.Args[2:]))
		case "backup":
			os.Exit(runBackup(os.Args[2:]))
		case "restore":
			os.Exit(runRestore(os.Args[2:]))
		case "promote":
			os.Exit(runPromote(os.Args[2:]))
		case "trace":
			os.Exit(runTrace(os.Args[2:]))
		}
	}
	matcherName := flag.String("matcher", "ibs", strategy.FlagHelp())
	runDemo := flag.Bool("demo", false, "run the built-in demo scenario and exit")
	flag.Parse()

	mk, err := matcherFactory(*matcherName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predmatch:", err)
		os.Exit(2)
	}
	in := script.New(os.Stdout, script.WithMatcher(mk))

	if *runDemo {
		if err := in.Run(strings.NewReader(demo)); err != nil {
			fmt.Fprintln(os.Stderr, "predmatch:", err)
			os.Exit(1)
		}
		return
	}

	sources := flag.Args()
	if len(sources) == 0 {
		if err := in.Run(os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "predmatch:", err)
			os.Exit(1)
		}
		return
	}
	for _, path := range sources {
		var r io.ReadCloser
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "predmatch:", err)
				os.Exit(1)
			}
			r = f
		}
		err := in.Run(r)
		r.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "predmatch: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}
