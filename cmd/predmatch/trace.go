package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
)

// runTrace implements `predmatch trace`: pull traces from a running
// daemon's flight recorder. It talks to the admin HTTP listener (the
// daemon's -admin address), not the protocol port — the recorder is an
// operational surface, like /metrics.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("predmatch trace", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:7342", "predmatchd admin address (the daemon's -admin listener)")
	id := fs.String("id", "", "show only the trace with this id (as printed by loadgen or slow-request logs)")
	slow := fs.Bool("slow", false, "read the slow-trace ring instead of the sampled flight recorder")
	n := fs.Int("n", 0, "show at most N traces, newest first (0 = all)")
	asJSON := fs.Bool("json", false, "emit the JSON form instead of the span tree rendering")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: predmatch trace [-admin host:port] [-id trace-id] [-slow] [-n count] [-json]")
		return 2
	}

	q := url.Values{}
	if *id != "" {
		q.Set("id", *id)
	}
	if *slow {
		q.Set("slow", "1")
	}
	if *n > 0 {
		q.Set("n", strconv.Itoa(*n))
	}
	if *asJSON {
		q.Set("format", "json")
	}
	u := url.URL{Scheme: "http", Host: *admin, Path: "/traces", RawQuery: q.Encode()}

	resp, err := http.Get(u.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatch trace: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(os.Stderr, "predmatch trace: %s: %s", resp.Status, body)
		return 1
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintf(os.Stderr, "predmatch trace: %v\n", err)
		return 1
	}
	return 0
}
