package main

import (
	"strings"
	"testing"

	"predmatch/internal/wire"
)

// TestPrintStats pins the stats rendering against a representative
// frame: shard, tree and per-connection sections must all surface, and
// the falling-behind subscriber's queue/drop numbers must be visible.
func TestPrintStats(t *testing.T) {
	st := &wire.Stats{
		Rules:      []string{"band", "senior"},
		Matcher:    "sharded",
		Predicates: 3,
		Conns:      2,
		Subs:       1,
		Delivered:  90,
		Dropped:    10,
		Shards: []wire.ShardStat{
			{Rel: "emp", Predicates: 3, Version: 7, Structure: "hint"},
		},
		Meta: &wire.MetaStat{
			Default: "ibs",
			Rels: []wire.MetaRelStat{
				{Rel: "emp", Structure: "hint",
					Reason:     "hint, because stab-heavy/low-write (900 stabs/s, 3 writes/s), est 0.3µs vs 2.1µs (ibs)",
					Migrations: 2, SinceSecs: 41,
					EstNS: 300, AltName: "ibs", AltNS: 2100},
			},
		},
		Trees: []wire.TreeStat{
			{Rel: "emp", Attr: "salary", Intervals: 3, Nodes: 5, Markers: 8, Height: 3},
		},
		Relations: []wire.RelStat{
			{Name: "emp", Rows: 42, NextID: 57},
		},
		WAL: &wire.WALStat{
			LastSeq: 230, DurableSeq: 229, SnapshotSeq: 100,
			Segments: 2, Sync: "interval",
		},
		Repl: &wire.ReplStat{Role: "leader", Followers: 1},
		Connections: []wire.ConnStat{
			{Remote: "127.0.0.1:50001", Subscribed: true, Queue: 128, QueueCap: 128,
				Delivered: 90, Dropped: 10, LastSeq: 228},
			{Remote: "127.0.0.1:50002", Queue: 0, QueueCap: 128,
				Replica: true, ReplSeq: 226},
		},
	}
	var b strings.Builder
	printStats(&b, st)
	out := b.String()
	for _, want := range []string{
		"matcher sharded: 3 predicates, 2 rules",
		"conns 2 (1 subscribed), notifications 90 delivered / 10 dropped",
		"emp",
		"salary",
		"version 7",
		"structure hint",
		"adaptive index (default ibs):",
		"relation emp: hint, because stab-heavy/low-write",
		"[2 migrations, resident 41s]",
		"127.0.0.1:50001",
		"128/128", // queue pinned at capacity: the slow consumer
		"228",
		"42 rows",
		"wal: sync=interval, seq 230 (229 durable), 2 segments, snapshot at seq 100",
		"replication: leader, 1 followers connected",
		"repl@226",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printStats output missing %q:\n%s", want, out)
		}
	}
}
