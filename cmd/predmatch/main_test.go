package main

import (
	"bytes"
	"strings"
	"testing"

	"predmatch/internal/script"
)

func TestMatcherFactory(t *testing.T) {
	for _, name := range []string{"ibs", "ibs-unbalanced", "hashseq", "seqscan", "rtree", "sharded"} {
		mk, err := matcherFactory(name)
		if err != nil || mk == nil {
			t.Errorf("matcherFactory(%q) = %v", name, err)
		}
	}
	if _, err := matcherFactory("bogus"); err == nil {
		t.Error("unknown matcher accepted")
	}
}

// TestDemoScript runs the built-in demo through every matcher; its
// statements must parse and execute cleanly everywhere.
func TestDemoScript(t *testing.T) {
	for _, name := range []string{"ibs", "ibs-unbalanced", "hashseq", "seqscan", "rtree", "sharded"} {
		mk, err := matcherFactory(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		in := script.New(&buf, script.WithMatcher(mk))
		if err := in.Run(strings.NewReader(demo)); err != nil {
			t.Fatalf("%s: demo failed: %v\n%s", name, err, buf.String())
		}
		for _, want := range []string{
			"flag: low paid senior",
			"mid salary band",
			"odd-aged shoe dept",
			"well-paid employee in underfunded department",
			"emp: 2 row(s)",
		} {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("%s: demo output missing %q", name, want)
			}
		}
	}
}
