package main

import (
	"flag"
	"fmt"
	"os"

	"predmatch/internal/client"
)

// runPromote implements `predmatch promote`: turn the follower at the
// given address into a leader. The follower seals its replication
// stream, starts accepting mutations, and continues the leader's WAL
// sequence space — the failover step after the leader dies (see
// docs/REPLICATION.md for the rules on when this is safe).
func runPromote(args []string) int {
	fs := flag.NewFlagSet("predmatch promote", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7341", "follower predmatchd address to promote")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: predmatch promote [-addr host:port]")
		return 2
	}
	c, err := client.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatch promote: dial %s: %v\n", *addr, err)
		return 1
	}
	defer c.Close()
	seq, err := c.Promote()
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatch promote: %v\n", err)
		return 1
	}
	fmt.Printf("promoted %s to leader at seq %d\n", *addr, seq)
	return 0
}
