package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/wal"
)

// runBackup implements `predmatch backup`: ask a running predmatchd to
// write a durable checkpoint covering everything acked so far, and
// report where it landed. With -o, the checkpoint is also copied to a
// local file — which assumes the CLI shares a filesystem with the
// daemon, the usual shape for an on-host ops tool.
func runBackup(args []string) int {
	fs := flag.NewFlagSet("predmatch backup", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7341", "predmatchd address")
	out := fs.String("o", "", "copy the checkpoint to this file (requires a shared filesystem with the daemon)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: predmatch backup [-addr host:port] [-o file]")
		return 2
	}
	c, err := client.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatch backup: dial %s: %v\n", *addr, err)
		return 1
	}
	defer c.Close()
	info, err := c.Backup()
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatch backup: %v\n", err)
		return 1
	}
	fmt.Printf("checkpoint %s (seq %d, %d bytes)\n", info.Path, info.Seq, info.Bytes)
	if *out == "" {
		return 0
	}
	if err := copyFile(info.Path, *out); err != nil {
		fmt.Fprintf(os.Stderr, "predmatch backup: copy to %s: %v\n", *out, err)
		return 1
	}
	// Validate the copy end to end: a backup you cannot restore is not
	// a backup.
	if _, err := wal.ReadSnapshot(*out); err != nil {
		fmt.Fprintf(os.Stderr, "predmatch backup: copied file failed validation: %v\n", err)
		return 1
	}
	fmt.Printf("copied to %s\n", *out)
	return 0
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = io.Copy(out, in); err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return err
}

// runRestore implements `predmatch restore`: validate a checkpoint
// file and print what it contains; with -data-dir, also install it as
// the seed state of a fresh data directory for the next predmatchd
// start. Restoring refuses a directory that already holds WAL state.
func runRestore(args []string) int {
	fs := flag.NewFlagSet("predmatch restore", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "install the snapshot into this (empty) data directory; omit to just inspect")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: predmatch restore [-data-dir dir] snapshot.ckpt")
		return 2
	}
	path := fs.Arg(0)
	snap, err := wal.ReadSnapshot(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predmatch restore: %v\n", err)
		return 1
	}
	printSnapshot(os.Stdout, snap)
	if *dataDir == "" {
		return 0
	}
	if _, err := wal.InstallSnapshot(*dataDir, path); err != nil {
		fmt.Fprintf(os.Stderr, "predmatch restore: %v\n", err)
		return 1
	}
	fmt.Printf("installed into %s; start predmatchd with -data-dir %s to serve it\n", *dataDir, *dataDir)
	return 0
}

// printSnapshot renders a checkpoint summary in the stats table style.
func printSnapshot(w io.Writer, snap *wal.Snapshot) {
	fmt.Fprintf(w, "snapshot seq %d", snap.Seq)
	if snap.TakenUnixNano > 0 {
		fmt.Fprintf(w, ", taken %s", time.Unix(0, snap.TakenUnixNano).UTC().Format(time.RFC3339))
	}
	fmt.Fprintf(w, "\n")
	fmt.Fprintf(w, "relations:\n")
	for _, rel := range snap.Relations {
		fmt.Fprintf(w, "  %-12s %6d rows  next id %-6d", rel.Name, len(rel.Rows), rel.NextID)
		for i, a := range rel.Attrs {
			if i > 0 {
				fmt.Fprintf(w, ", ")
			} else {
				fmt.Fprintf(w, " (")
			}
			fmt.Fprintf(w, "%s %s", a.Name, a.Type)
		}
		if len(rel.Attrs) > 0 {
			fmt.Fprintf(w, ")")
		}
		if len(rel.Indexes) > 0 {
			fmt.Fprintf(w, "  indexed: %v", rel.Indexes)
		}
		fmt.Fprintf(w, "\n")
	}
	if len(snap.Rules) > 0 {
		fmt.Fprintf(w, "rules:\n")
		for _, src := range snap.Rules {
			fmt.Fprintf(w, "  %s\n", src)
		}
	}
	if len(snap.Preds) > 0 {
		fmt.Fprintf(w, "direct predicates: %d (next id %d)\n", len(snap.Preds), snap.NextPredID)
	}
}
