package main

import (
	"strings"
	"testing"

	"predmatch/internal/pred"
	"predmatch/internal/storage"
	"predmatch/internal/strategy"
)

// TestFactoryCoversRegistry asserts the -matcher flag and the shared
// strategy registry agree: every registered name resolves to a working
// factory, the produced matcher reports the registered name, and the
// flag's help text mentions every strategy — so the usage string can
// never go stale again (the PR-6 bug was a help string listing 6 of
// the strategies).
func TestFactoryCoversRegistry(t *testing.T) {
	help := strategy.FlagHelp()
	for _, in := range strategy.All() {
		mk, err := matcherFactory(in.Name)
		if err != nil {
			t.Errorf("matcherFactory(%q): %v", in.Name, err)
			continue
		}
		db := storage.NewDB()
		m := mk(db, pred.NewRegistry())
		if m == nil {
			t.Errorf("factory %q returned nil matcher", in.Name)
			continue
		}
		if m.Name() != in.Name {
			t.Errorf("factory %q built matcher named %q", in.Name, m.Name())
		}
		if !strings.Contains(help, in.Name) {
			t.Errorf("flag help omits strategy %q: %s", in.Name, help)
		}
	}
	if _, err := matcherFactory("nosuch"); err == nil {
		t.Error("matcherFactory accepted unknown strategy")
	} else {
		// The error must enumerate the real choices.
		for _, name := range strategy.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("unknown-strategy error omits %q: %v", name, err)
			}
		}
	}
}

// TestIndexNamesAreCoreStrategies asserts every predmatchd -index
// choice resolves CoreOptions and appears in the index flag help.
func TestIndexNamesAreCoreStrategies(t *testing.T) {
	help := strategy.IndexFlagHelp()
	for _, name := range strategy.IndexNames() {
		if _, ok := strategy.CoreOptions(name); !ok {
			t.Errorf("IndexNames lists %q but CoreOptions rejects it", name)
		}
		if !strings.Contains(help, name) {
			t.Errorf("index flag help omits %q: %s", name, help)
		}
	}
	if _, ok := strategy.CoreOptions("rtree"); ok {
		t.Error("CoreOptions accepted a whole-matcher strategy")
	}
}
