package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// benchFile is the JSON shape run() emits.
type benchFile struct {
	Meta    map[string]string `json:"meta,omitempty"`
	Results []record          `json:"results"`
}

// runDiff implements `benchjson diff`: compare candidate against
// baseline for every benchmark whose name contains the strategy token,
// and fail (exit 1) when any ns/op regresses by more than threshold
// percent. Exit 2 is a usage or input error.
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "baseline BENCH_*.json file")
	candidate := fs.String("candidate", "", "candidate BENCH_*.json file")
	strategy := fs.String("strategy", "", "strategy name the benchmark name must contain (empty = compare everything)")
	threshold := fs.Float64("threshold", 15, "allowed match-latency regression in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" || *candidate == "" || fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: benchjson diff -baseline FILE -candidate FILE [-strategy NAME] [-threshold PCT]")
		return 2
	}
	base, err := loadBench(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson diff:", err)
		return 2
	}
	cand, err := loadBench(*candidate)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson diff:", err)
		return 2
	}
	rows, regressions := diffBench(base, cand, *strategy, *threshold)
	if len(rows) == 0 {
		fmt.Fprintf(stderr, "benchjson diff: no benchmark present in both files matches %q\n", *strategy)
		return 2
	}
	for _, row := range rows {
		fmt.Fprintln(stdout, row)
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "FAIL: %d benchmark(s) regressed more than %.0f%%\n", regressions, *threshold)
		return 1
	}
	fmt.Fprintf(stdout, "ok: no regression above %.0f%%\n", *threshold)
	return 0
}

func loadBench(path string) (*benchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var bf benchFile
	if err := json.NewDecoder(f).Decode(&bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

// stripProcs removes the trailing "-<GOMAXPROCS>" suffix go test
// appends to benchmark names, so files recorded on machines with
// different core counts still share names.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// diffBench compares ns/op for every name present in both files and
// containing the strategy token, returning one formatted row per
// comparison and the number of rows beyond the threshold. Names are
// compared with the GOMAXPROCS suffix stripped.
func diffBench(base, cand *benchFile, strategy string, threshold float64) (rows []string, regressions int) {
	baseNs := map[string]float64{}
	for _, r := range base.Results {
		if r.NsPerOp > 0 {
			baseNs[stripProcs(r.Name)] = r.NsPerOp
		}
	}
	var names []string
	candNs := map[string]float64{}
	for _, r := range cand.Results {
		name := stripProcs(r.Name)
		if r.NsPerOp <= 0 || !strings.Contains(name, strategy) {
			continue
		}
		if _, ok := baseNs[name]; !ok {
			continue
		}
		candNs[name] = r.NsPerOp
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, c := baseNs[name], candNs[name]
		delta := 100 * (c - b) / b
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regressions++
		}
		rows = append(rows, fmt.Sprintf("%-60s %12.0f -> %12.0f ns/op  %+7.1f%%  %s",
			name, b, c, delta, verdict))
	}
	return rows, regressions
}
