package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diffArgs(cand string, extra ...string) []string {
	args := []string{
		"-baseline", filepath.Join("testdata", "diff_base.json"),
		"-candidate", filepath.Join("testdata", cand),
	}
	return append(args, extra...)
}

// TestDiffOK: a candidate within the threshold exits 0 and reports ok.
func TestDiffOK(t *testing.T) {
	var out, errb bytes.Buffer
	code := runDiff(diffArgs("diff_cand_ok.json", "-strategy", "sharded"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "ok: no regression above 15%") {
		t.Errorf("missing ok line:\n%s", s)
	}
	// The improvement row is reported, and candidate-only names are
	// ignored (machines differ; only shared names compare).
	if !strings.Contains(s, "sharded-hint") || strings.Contains(s, "only-in-candidate") {
		t.Errorf("unexpected rows:\n%s", s)
	}
}

// TestDiffRegression: >15% on a matching name exits 1 and names it.
func TestDiffRegression(t *testing.T) {
	var out, errb bytes.Buffer
	code := runDiff(diffArgs("diff_cand_regressed.json", "-strategy", "sharded"), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s", code, out.String())
	}
	s := out.String()
	// sharded-4 is +20% and sharded-hint-4 +30%: both flagged;
	// sharded+writes-4 is +2%: not flagged.
	if strings.Count(s, "REGRESSION") != 2 {
		t.Errorf("want 2 REGRESSION rows:\n%s", s)
	}
	if !strings.Contains(s, "FAIL: 2 benchmark(s) regressed more than 15%") {
		t.Errorf("missing FAIL line:\n%s", s)
	}
}

// TestDiffStrategyFilter narrows the comparison to one strategy's
// benchmarks: with -strategy sharded-hint the +20% sharded-4 row is out
// of scope and only the hint row is compared.
func TestDiffStrategyFilter(t *testing.T) {
	var out, errb bytes.Buffer
	code := runDiff(diffArgs("diff_cand_regressed.json", "-strategy", "sharded-hint"), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	// Exactly one comparison row (the hint one): the +20% plain-sharded
	// row is filtered out of scope.
	if s := out.String(); strings.Count(s, "->") != 1 || !strings.Contains(s, "sharded-hint") {
		t.Errorf("filter leaked rows:\n%s", s)
	}
	// A generous threshold turns the same comparison green.
	out.Reset()
	code = runDiff(diffArgs("diff_cand_regressed.json", "-strategy", "sharded-hint", "-threshold", "50"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d with threshold 50, want 0:\n%s", code, out.String())
	}
}

// TestDiffProcsSuffix: a candidate recorded on a machine with a
// different GOMAXPROCS (no "-4" suffix) still compares against the
// suffixed baseline names.
func TestDiffProcsSuffix(t *testing.T) {
	cand := filepath.Join(t.TempDir(), "cand.json")
	body := `{"results": [{"name": "BenchmarkConcurrentMatchers/sharded", "ns_per_op": 4100}]}`
	if err := os.WriteFile(cand, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := runDiff([]string{
		"-baseline", filepath.Join("testdata", "diff_base.json"),
		"-candidate", cand, "-strategy", "sharded",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s stdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkConcurrentMatchers/sharded ") {
		t.Errorf("suffix not normalized:\n%s", out.String())
	}
}

// TestDiffErrors: usage and input failures exit 2.
func TestDiffErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runDiff(nil, &out, &errb); code != 2 {
		t.Errorf("missing flags: exit = %d, want 2", code)
	}
	if code := runDiff(diffArgs("nosuch.json"), &out, &errb); code != 2 {
		t.Errorf("missing candidate file: exit = %d, want 2", code)
	}
	if code := runDiff(diffArgs("diff_cand_ok.json", "-strategy", "nomatch"), &out, &errb); code != 2 {
		t.Errorf("no shared names: exit = %d, want 2", code)
	}
	// Malformed JSON.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runDiff([]string{"-baseline", bad, "-candidate", bad}, &out, &errb); code != 2 {
		t.Errorf("malformed JSON: exit = %d, want 2", code)
	}
}
