// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one record per benchmark result line:
//
//	{"name": "BenchmarkServerMatch/rules=16-8", "runs": 5659,
//	 "ns_per_op": 21658, "metrics": {"ns/tuple": 8195}}
//
// Context lines (goos/goarch/pkg/cpu) are folded into a leading
// "_meta" record. CI uses it to publish BENCH_*.json artifacts.
//
// The diff subcommand is the bench-regression guard: it compares a
// candidate BENCH_*.json against a baseline and exits nonzero when any
// benchmark matching a strategy's name regresses in match latency by
// more than the threshold:
//
//	benchjson diff -baseline BENCH_PR4.json -candidate BENCH_PR6.json \
//	               -strategy sharded [-threshold 15]
//
// Only names present in BOTH files are compared (machines differ; the
// diff is relative). CI runs it as an advisory step after the bench
// snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs,omitempty"`
	NsPerOp float64            `json:"ns_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:], os.Stdout, os.Stderr))
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run converts bench text on r to indented JSON on w.
func run(r io.Reader, w io.Writer) error {
	meta := map[string]string{}
	var out []record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			meta[k] = strings.TrimSpace(v)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		rec := record{Name: fields[0], Metrics: map[string]float64{}}
		rec.Runs, _ = strconv.ParseInt(fields[1], 10, 64)
		// Remaining fields come in value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				rec.NsPerOp = v
			} else {
				rec.Metrics[fields[i+1]] = v
			}
		}
		if len(rec.Metrics) == 0 {
			rec.Metrics = nil
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	payload := struct {
		Meta    map[string]string `json:"meta,omitempty"`
		Results []record          `json:"results"`
	}{meta, out}
	return enc.Encode(payload)
}
