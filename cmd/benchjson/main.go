// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one record per benchmark result line:
//
//	{"name": "BenchmarkServerMatch/rules=16-8", "runs": 5659,
//	 "ns_per_op": 21658, "metrics": {"ns/tuple": 8195}}
//
// Context lines (goos/goarch/pkg/cpu) are folded into a leading
// "_meta" record. CI uses it to publish BENCH_*.json artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs,omitempty"`
	NsPerOp float64            `json:"ns_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	meta := map[string]string{}
	var out []record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			meta[k] = strings.TrimSpace(v)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		r := record{Name: fields[0], Metrics: map[string]float64{}}
		r.Runs, _ = strconv.ParseInt(fields[1], 10, 64)
		// Remaining fields come in value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[fields[i+1]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	payload := struct {
		Meta    map[string]string `json:"meta,omitempty"`
		Results []record          `json:"results"`
	}{meta, out}
	if err := enc.Encode(payload); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
