package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestGolden pins the exact JSON benchjson emits for a representative
// `go test -bench` transcript, so CI's bench.json schema cannot drift
// silently. Regenerate with `go test ./cmd/benchjson -update`.
func TestGolden(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var got bytes.Buffer
	if err := run(in, &got); err != nil {
		t.Fatalf("run: %v", err)
	}
	golden := filepath.Join("testdata", "bench.golden.json")
	if *update {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("output differs from %s:\ngot:\n%s\nwant:\n%s", golden, got.Bytes(), want)
	}
}

// TestEmptyInput pins the no-benchmarks shape: meta omitted, results
// null — consumers must handle both.
func TestEmptyInput(t *testing.T) {
	var got bytes.Buffer
	if err := run(strings.NewReader("PASS\nok  \tpredmatch\t0.1s\n"), &got); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := "{\n  \"results\": null\n}\n"
	if got.String() != want {
		t.Errorf("empty input: got %q, want %q", got.String(), want)
	}
}
