// Package repro's benchmark suite maps one testing.B benchmark onto each
// evaluation artifact of Hanson et al., SIGMOD 1990 (see DESIGN.md's
// experiment index and EXPERIMENTS.md for the paper-vs-measured record):
//
//	BenchmarkFig7Insert               — Figure 7 (IBS insertion vs N, a)
//	BenchmarkFig8Search               — Figure 8 (IBS stabbing vs N, a)
//	BenchmarkFig9Match                — Figure 9 (IBS scheme vs sequential)
//	BenchmarkCostModelScenario        — Section 5.2 scenario, end to end
//	BenchmarkMarkerSpace              — Section 5.1 space (markers metric)
//	BenchmarkBalanceAblation          — Section 4.3 balanced vs unbalanced
//	BenchmarkIntervalIndexComparison  — Section 6 future-work comparison
//	BenchmarkMatcherStrategies        — Section 2 strategy shoot-out
//	BenchmarkMarkSetRepresentation    — mark sets: sorted slice vs AVL
//	BenchmarkParallelMatch            — Section 6 parallelism sketch
//	BenchmarkConcurrentMatchers       — snapshot wrappers under parallel load
//	BenchmarkShardedMatchBatch        — sharded MatchBatch amortization
//	BenchmarkJoinNetwork              — Section 6 two-layer join network
//	BenchmarkSchemeIndexAblation      — scheme over IBS-trees vs skip lists
//
// Run everything with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"predmatch/internal/augtree"
	"predmatch/internal/core"
	"predmatch/internal/hashseq"
	"predmatch/internal/hint"
	"predmatch/internal/ibs"
	"predmatch/internal/interval"
	"predmatch/internal/islist"
	"predmatch/internal/ivindex"
	"predmatch/internal/join"
	"predmatch/internal/markset"
	"predmatch/internal/matcher"
	"predmatch/internal/obs"
	"predmatch/internal/phylock"
	"predmatch/internal/pred"
	"predmatch/internal/pst"
	"predmatch/internal/rtree"
	"predmatch/internal/schema"
	"predmatch/internal/selectivity"
	"predmatch/internal/seqscan"
	"predmatch/internal/shard"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/workload"
)

var benchSizes = []int{100, 500, 1000}
var pointFracs = []float64{0, 0.5, 1}

// BenchmarkFig7Insert builds an unbalanced IBS-tree (the paper's
// measured configuration) from the Section 5.2 workload; each benchmark
// op is one full N-interval build, and ns/insert is reported as a metric.
func BenchmarkFig7Insert(b *testing.B) {
	for _, a := range pointFracs {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("a=%v/N=%d", a, n), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1990))
				ivs := workload.Intervals(rng, n, a)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(false))
					for j, iv := range ivs {
						if err := tree.Insert(markset.ID(j), iv); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/insert")
			})
		}
	}
}

// BenchmarkFig8Search stabs pre-built IBS-trees with uniform points.
func BenchmarkFig8Search(b *testing.B) {
	for _, a := range pointFracs {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("a=%v/N=%d", a, n), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1990))
				tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(false))
				for j, iv := range workload.Intervals(rng, n, a) {
					if err := tree.Insert(markset.ID(j), iv); err != nil {
						b.Fatal(err)
					}
				}
				points := workload.StabPoints(rng, 4096)
				var buf []markset.ID
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = tree.StabAppend(points[i%len(points)], buf[:0])
				}
			})
		}
	}
}

// BenchmarkFig9Match compares per-tuple whole-scheme matching between
// the IBS-tree index and the sequential list at the paper's small N.
func BenchmarkFig9Match(b *testing.B) {
	for _, n := range []int{5, 20, 40} {
		cat := schema.NewCatalog()
		rel := schema.MustRelation(fmt.Sprintf("r%d", n), schema.Attribute{Name: "attr", Type: value.KindInt})
		if err := cat.Add(rel); err != nil {
			b.Fatal(err)
		}
		funcs := pred.NewRegistry()
		rng := rand.New(rand.NewSource(1990))
		preds := workload.SingleAttrPreds(rng, rel.Name(), "attr", n, 0.5)
		points := workload.StabPoints(rng, 4096)
		tuples := make([]tuple.Tuple, len(points))
		for i, x := range points {
			tuples[i] = tuple.New(value.Int(x))
		}
		for name, m := range map[string]matcher.Matcher{
			"ibs": core.New(cat, funcs, core.WithTreeOptions(ibs.Balanced(false))),
			"seq": seqscan.New(cat, funcs),
		} {
			for _, p := range preds {
				if err := m.Add(p); err != nil {
					b.Fatal(err)
				}
			}
			b.Run(fmt.Sprintf("%s/N=%d", name, n), func(b *testing.B) {
				var buf []pred.ID
				for i := 0; i < b.N; i++ {
					buf, _ = m.Match(rel.Name(), tuples[i%len(tuples)], buf[:0])
				}
			})
		}
	}
}

// BenchmarkCostModelScenario measures the Section 5.2 scenario end to
// end: 200 predicates, 15 attributes, 1/3 used, 90% indexable.
func BenchmarkCostModelScenario(b *testing.B) {
	rng := rand.New(rand.NewSource(1990))
	pop, err := workload.PaperScenario().Build(rng)
	if err != nil {
		b.Fatal(err)
	}
	ix := core.New(pop.Catalog, pop.Funcs, core.WithEstimator(selectivity.Static{}))
	for _, p := range pop.Preds {
		if err := ix.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	rel := pop.Rels[0]
	tuples := make([]tuple.Tuple, 4096)
	for i := range tuples {
		tuples[i] = pop.Tuple(rng, rel)
	}
	var buf []pred.ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = ix.Match(rel.Name(), tuples[i%len(tuples)], buf[:0])
	}
}

// BenchmarkMarkerSpace reports the Section 5.1 marker counts per
// interval as metrics (the "time" of this benchmark is irrelevant).
func BenchmarkMarkerSpace(b *testing.B) {
	regimes := map[string]func(int) []interval.Interval[int64]{
		"disjoint": workload.DisjointIntervals,
		"nested":   workload.NestedIntervals,
		"random": func(n int) []interval.Interval[int64] {
			return workload.Intervals(rand.New(rand.NewSource(1990)), n, 0)
		},
	}
	for name, gen := range regimes {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", name, n), func(b *testing.B) {
				var markers int
				for i := 0; i < b.N; i++ {
					tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(true))
					for j, iv := range gen(n) {
						if err := tree.Insert(markset.ID(j), iv); err != nil {
							b.Fatal(err)
						}
					}
					markers = tree.MarkerCount()
				}
				b.ReportMetric(float64(markers)/float64(n), "markers/interval")
			})
		}
	}
}

// BenchmarkBalanceAblation measures stabbing cost under sorted
// (adversarial) insertion order with and without AVL balancing.
func BenchmarkBalanceAblation(b *testing.B) {
	const n = 2000
	ivs := workload.DisjointIntervals(n)
	for _, balanced := range []bool{true, false} {
		name := "balanced"
		if !balanced {
			name = "unbalanced"
		}
		b.Run(name, func(b *testing.B) {
			tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(balanced))
			for j, iv := range ivs {
				if err := tree.Insert(markset.ID(j), iv); err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(7))
			points := make([]int64, 4096)
			for i := range points {
				points[i] = rng.Int63n(n * 20)
			}
			var buf []markset.ID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = tree.StabAppend(points[i%len(points)], buf[:0])
			}
			b.ReportMetric(float64(tree.Height()), "height")
		})
	}
}

// ivIndexUnderTest adapts each dynamic interval index for the
// Section 6 comparison benchmark.
func ivIndexesUnderTest() map[string]func() ivindex.Index {
	return map[string]func() ivindex.Index{
		"ibs-balanced": func() ivindex.Index {
			return benchIvWrap{ibs.New(ivindex.Int64Cmp, ibs.Balanced(true)), "ibs-balanced"}
		},
		"ibs-unbalanced": func() ivindex.Index {
			return benchIvWrap{ibs.New(ivindex.Int64Cmp, ibs.Balanced(false)), "ibs-unbalanced"}
		},
		"islist":   func() ivindex.Index { return benchIslWrap{islist.New(ivindex.Int64Cmp)} },
		"hint":     func() ivindex.Index { return benchHintWrap{hint.New(ivindex.Int64Cmp)} },
		"pst":      func() ivindex.Index { return benchPstWrap{pst.New(ivindex.Int64Cmp)} },
		"augtree":  func() ivindex.Index { return benchAugWrap{augtree.New(ivindex.Int64Cmp)} },
		"rtree-1d": func() ivindex.Index { return rtree.NewInterval1D() },
	}
}

type benchIvWrap struct {
	*ibs.Tree[int64]
	name string
}

func (w benchIvWrap) Name() string { return w.name }

type benchIslWrap struct{ *islist.List[int64] }

func (benchIslWrap) Name() string { return "islist" }

type benchHintWrap struct{ *hint.Index[int64] }

func (benchHintWrap) Name() string { return "hint" }

type benchPstWrap struct{ *pst.Tree[int64] }

func (benchPstWrap) Name() string { return "pst" }

type benchAugWrap struct{ *augtree.Tree[int64] }

func (benchAugWrap) Name() string { return "augtree" }

// BenchmarkIntervalIndexComparison sweeps insert/stab/delete across the
// dynamic interval indexes on the paper's a=0.5 workload.
func BenchmarkIntervalIndexComparison(b *testing.B) {
	const n = 1000
	rng := rand.New(rand.NewSource(1990))
	ivs := workload.Intervals(rng, n, 0.5)
	points := workload.StabPoints(rng, 4096)
	for name, mk := range ivIndexesUnderTest() {
		b.Run(name+"/insert", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := mk()
				for j, iv := range ivs {
					if err := ix.Insert(markset.ID(j), iv); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/insert")
		})
		b.Run(name+"/stab", func(b *testing.B) {
			ix := mk()
			for j, iv := range ivs {
				if err := ix.Insert(markset.ID(j), iv); err != nil {
					b.Fatal(err)
				}
			}
			var buf []markset.ID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = ix.StabAppend(points[i%len(points)], buf[:0])
			}
		})
		b.Run(name+"/delete", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ix := mk()
				for j, iv := range ivs {
					if err := ix.Insert(markset.ID(j), iv); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for j := 0; j < n; j++ {
					if err := ix.Delete(markset.ID(j)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/delete")
		})
	}
}

// BenchmarkMatcherStrategies sweeps the whole-scheme strategies over a
// multi-relation population (the Section 2 baselines and the IBS scheme).
func BenchmarkMatcherStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(1990))
	spec := workload.SchemaSpec{
		Relations:     4,
		AttrsPerRel:   15,
		UsedAttrFrac:  1.0 / 3.0,
		PredsPerRel:   200,
		ClausesPer:    2,
		IndexableFrac: 0.9,
		PointFrac:     0.5,
	}
	pop, err := spec.Build(rng)
	if err != nil {
		b.Fatal(err)
	}
	tuples := make([]tuple.Tuple, 4096)
	rels := make([]string, len(tuples))
	for i := range tuples {
		rel := pop.Rels[i%len(pop.Rels)]
		rels[i] = rel.Name()
		tuples[i] = pop.Tuple(rng, rel)
	}

	strategies := map[string]func() matcher.Matcher{
		"seqscan": func() matcher.Matcher { return seqscan.New(pop.Catalog, pop.Funcs) },
		"hashseq": func() matcher.Matcher { return hashseq.New(pop.Catalog, pop.Funcs) },
		"rtree":   func() matcher.Matcher { return rtree.NewPredMatcher(pop.Catalog, pop.Funcs) },
		"ibs": func() matcher.Matcher {
			return core.New(pop.Catalog, pop.Funcs, core.WithEstimator(selectivity.Static{}))
		},
		"hint": func() matcher.Matcher {
			return core.New(pop.Catalog, pop.Funcs,
				core.WithIndexFactory(func() core.AttrIndex {
					return hint.New(value.Compare)
				}),
				core.WithName("hint"))
		},
		"sharded": func() matcher.Matcher {
			return shard.New(pop.Catalog, pop.Funcs)
		},
		"phylock-noidx": func() matcher.Matcher {
			db := storage.NewDB()
			for _, rel := range pop.Rels {
				if _, err := db.CreateRelation(rel); err != nil {
					b.Fatal(err)
				}
			}
			return phylock.New(db, pop.Funcs)
		},
		"phylock-idx": func() matcher.Matcher {
			db := storage.NewDB()
			for _, rel := range pop.Rels {
				tab, err := db.CreateRelation(rel)
				if err != nil {
					b.Fatal(err)
				}
				for a := 0; a < 5; a++ {
					if err := tab.CreateIndex(rel.Attrs()[a].Name); err != nil {
						b.Fatal(err)
					}
				}
			}
			return phylock.New(db, pop.Funcs)
		},
	}
	for name, mk := range strategies {
		b.Run(name, func(b *testing.B) {
			m := mk()
			for _, p := range pop.Preds {
				if err := m.Add(p); err != nil {
					b.Fatal(err)
				}
			}
			var buf []pred.ID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % len(tuples)
				buf, _ = m.Match(rels[j], tuples[j], buf[:0])
			}
		})
	}
}

// BenchmarkMarkSetRepresentation is the DESIGN.md ablation on mark-set
// storage: sorted slices versus the AVL sets the paper's O(log^2 N)
// analysis assumes.
func BenchmarkMarkSetRepresentation(b *testing.B) {
	factories := map[string]markset.Factory{
		"slice": markset.NewSlice,
		"avl":   markset.NewAVL,
	}
	rng := rand.New(rand.NewSource(1990))
	ivs := workload.Intervals(rng, 1000, 0.5)
	points := workload.StabPoints(rng, 4096)
	for name, f := range factories {
		b.Run(name+"/insert", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tree := ibs.New(ivindex.Int64Cmp, ibs.MarkSets(f))
				for j, iv := range ivs {
					if err := tree.Insert(markset.ID(j), iv); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(name+"/stab", func(b *testing.B) {
			tree := ibs.New(ivindex.Int64Cmp, ibs.MarkSets(f))
			for j, iv := range ivs {
				if err := tree.Insert(markset.ID(j), iv); err != nil {
					b.Fatal(err)
				}
			}
			var buf []markset.ID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = tree.StabAppend(points[i%len(points)], buf[:0])
			}
		})
	}
}

// BenchmarkParallelMatch measures the Section 6 parallelism sketch:
// per-attribute tree probes fanned out to goroutines plus partitioned
// completion tests, against the serial Match, on the cost-model
// scenario enlarged to make the fan-out worthwhile.
func BenchmarkParallelMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1990))
	spec := workload.PaperScenario()
	spec.PredsPerRel = 2000 // scale up so per-tuple work dominates scheduling
	pop, err := spec.Build(rng)
	if err != nil {
		b.Fatal(err)
	}
	ix := core.New(pop.Catalog, pop.Funcs, core.WithEstimator(selectivity.Static{}))
	for _, p := range pop.Preds {
		if err := ix.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	rel := pop.Rels[0]
	tuples := make([]tuple.Tuple, 1024)
	for i := range tuples {
		tuples[i] = pop.Tuple(rng, rel)
	}
	b.Run("serial", func(b *testing.B) {
		var buf []pred.ID
		for i := 0; i < b.N; i++ {
			buf, _ = ix.Match(rel.Name(), tuples[i%len(tuples)], buf[:0])
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			var buf []pred.ID
			for i := 0; i < b.N; i++ {
				buf, _ = ix.MatchParallel(rel.Name(), tuples[i%len(tuples)], buf[:0], workers)
			}
		})
	}
}

// BenchmarkConcurrentMatchers drives the two concurrency-safe wrappers
// — the copy-on-write ParallelMatcher and the relation-sharded snapshot
// matcher — with every benchmark goroutine matching concurrently
// (b.RunParallel), the mixed-traffic regime the sharding targets. The
// "+writes" variants add one background writer publishing snapshots
// while the readers run, the case the old RWMutex design convoyed on.
func BenchmarkConcurrentMatchers(b *testing.B) {
	rng := rand.New(rand.NewSource(1990))
	spec := workload.SchemaSpec{
		Relations:     4,
		AttrsPerRel:   15,
		UsedAttrFrac:  1.0 / 3.0,
		PredsPerRel:   200,
		ClausesPer:    2,
		IndexableFrac: 0.9,
		PointFrac:     0.5,
	}
	pop, err := spec.Build(rng)
	if err != nil {
		b.Fatal(err)
	}
	tuples := make([]tuple.Tuple, 4096)
	rels := make([]string, len(tuples))
	for i := range tuples {
		rel := pop.Rels[i%len(pop.Rels)]
		rels[i] = rel.Name()
		tuples[i] = pop.Tuple(rng, rel)
	}
	wrappers := map[string]func() matcher.Matcher{
		"ibs-parallel": func() matcher.Matcher {
			return core.NewParallel(core.New(pop.Catalog, pop.Funcs), 0)
		},
		"sharded": func() matcher.Matcher {
			return shard.New(pop.Catalog, pop.Funcs)
		},
		// The sharded wrapper over HINT partitions instead of IBS-trees:
		// same snapshot discipline, flat-array stabs. Compare against
		// "sharded" to price the index swap (recorded in BENCH_PR6.json).
		"sharded-hint": func() matcher.Matcher {
			return shard.New(pop.Catalog, pop.Funcs,
				shard.WithIndexOptions(
					core.WithIndexFactory(func() core.AttrIndex {
						return hint.New(value.Compare)
					})),
				shard.WithName("sharded-hint"))
		},
		// The fully instrumented daemon configuration: per-relation
		// latency histograms plus shared IBS stab counters. Compare
		// against "sharded" to price the telemetry (<5% is the budget,
		// recorded in BENCH_PR4.json).
		"sharded-instrumented": func() matcher.Matcher {
			reg := obs.NewRegistry()
			return shard.New(pop.Catalog, pop.Funcs,
				shard.WithMetrics(reg),
				shard.WithIndexOptions(core.WithTreeOptions(
					ibs.Instrument(ibs.RegisterCounters(reg)))),
				shard.WithName("sharded-instrumented"))
		},
	}
	for name, mk := range wrappers {
		for _, withWrites := range []bool{false, true} {
			bname := name
			if withWrites {
				bname += "+writes"
			}
			b.Run(bname, func(b *testing.B) {
				m := mk()
				for _, p := range pop.Preds {
					if err := m.Add(p); err != nil {
						b.Fatal(err)
					}
				}
				stop := make(chan struct{})
				var writerDone chan struct{}
				if withWrites {
					writerDone = make(chan struct{})
					go func() {
						defer close(writerDone)
						// Toggle the last predicate of each relation
						// forever: every iteration publishes a snapshot.
						i := 0
						for {
							select {
							case <-stop:
								return
							default:
							}
							p := pop.Preds[i%len(pop.Preds)]
							if err := m.Remove(p.ID); err != nil {
								b.Error(err)
								return
							}
							if err := m.Add(p); err != nil {
								b.Error(err)
								return
							}
							i++
						}
					}()
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					var buf []pred.ID
					i := 0
					for pb.Next() {
						j := i % len(tuples)
						buf, _ = m.Match(rels[j], tuples[j], buf[:0])
						i++
					}
				})
				b.StopTimer()
				if withWrites {
					close(stop)
					<-writerDone
				}
			})
		}
	}
}

// BenchmarkShardedMatchBatch measures the batch API's snapshot
// amortization and fan-out against a loop of single Matches on the
// same sharded matcher.
func BenchmarkShardedMatchBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1990))
	spec := workload.PaperScenario()
	spec.PredsPerRel = 2000 // enough per-tuple work for the fan-out to pay
	pop, err := spec.Build(rng)
	if err != nil {
		b.Fatal(err)
	}
	m := shard.New(pop.Catalog, pop.Funcs)
	for _, p := range pop.Preds {
		if err := m.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	rel := pop.Rels[0]
	batch := make([]tuple.Tuple, 256)
	for i := range batch {
		batch[i] = pop.Tuple(rng, rel)
	}
	b.Run("loop", func(b *testing.B) {
		var buf []pred.ID
		for i := 0; i < b.N; i++ {
			for _, t := range batch {
				buf, _ = m.Match(rel.Name(), t, buf[:0])
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(batch)), "ns/tuple")
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.MatchBatch(rel.Name(), batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(batch)), "ns/tuple")
	})
}

// BenchmarkJoinNetwork measures the two-layer discrimination network:
// per-tuple cost of routing an insert through the selection layer and
// the TREAT join layer, with alpha memories pre-populated.
func BenchmarkJoinNetwork(b *testing.B) {
	cat := schema.NewCatalog()
	emp := schema.MustRelation("emp",
		schema.Attribute{Name: "dept", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt},
	)
	dept := schema.MustRelation("dept",
		schema.Attribute{Name: "did", Type: value.KindInt},
		schema.Attribute{Name: "budget", Type: value.KindInt},
	)
	if err := cat.Add(emp); err != nil {
		b.Fatal(err)
	}
	if err := cat.Add(dept); err != nil {
		b.Fatal(err)
	}
	funcs := pred.NewRegistry()
	activations := 0
	net := join.New(cat, funcs, func(join.Activation) { activations++ })
	for r := 0; r < 20; r++ {
		rule := &join.Rule{
			ID: join.RuleID(r),
			Sides: []join.Side{
				{Rel: "emp", Pred: pred.New(0, "emp",
					pred.IvClause("salary", interval.AtLeast(value.Int(int64(r*500)))))},
				{Rel: "dept", Pred: pred.New(0, "dept",
					pred.IvClause("budget", interval.AtMost(value.Int(int64(100000-r*1000)))))},
			},
			Conditions: []join.Condition{{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "did"}},
		}
		if err := net.AddRule(rule); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1990))
	// Populate departments.
	for d := int64(0); d < 200; d++ {
		if err := net.Insert("dept", tuple.ID(d+1),
			tuple.New(value.Int(d), value.Int(rng.Int63n(200000)))); err != nil {
			b.Fatal(err)
		}
	}
	tuples := make([]tuple.Tuple, 1024)
	for i := range tuples {
		tuples[i] = tuple.New(value.Int(rng.Int63n(200)), value.Int(rng.Int63n(12000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tuple.ID(1000 + i)
		if err := net.Insert("emp", id, tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
		net.Delete("emp", id) // keep memories bounded across iterations
	}
	b.ReportMetric(float64(activations)/float64(b.N), "activations/op")
}

// BenchmarkSchemeIndexAblation compares the whole Figure-1 scheme with
// its per-attribute interval index swapped: IBS-trees (the paper's
// structure) versus interval skip lists (Hanson's successor) versus the
// flat HINT partition index, on the Section 5.2 scenario. The loop is
// pure stabbing — the stab-heavy regime BENCH_PR6.json records.
func BenchmarkSchemeIndexAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(1990))
	pop, err := workload.PaperScenario().Build(rng)
	if err != nil {
		b.Fatal(err)
	}
	variants := map[string]func() matcher.Matcher{
		"ibs-trees": func() matcher.Matcher {
			return core.New(pop.Catalog, pop.Funcs)
		},
		"interval-skip-lists": func() matcher.Matcher {
			return core.New(pop.Catalog, pop.Funcs,
				core.WithIndexFactory(func() core.AttrIndex {
					return islist.New(value.Compare)
				}))
		},
		"hint": func() matcher.Matcher {
			return core.New(pop.Catalog, pop.Funcs,
				core.WithIndexFactory(func() core.AttrIndex {
					return hint.New(value.Compare)
				}))
		},
	}
	rel := pop.Rels[0]
	tuples := make([]tuple.Tuple, 4096)
	for i := range tuples {
		tuples[i] = pop.Tuple(rng, rel)
	}
	for name, mk := range variants {
		b.Run(name, func(b *testing.B) {
			m := mk()
			for _, p := range pop.Preds {
				if err := m.Add(p); err != nil {
					b.Fatal(err)
				}
			}
			var buf []pred.ID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _ = m.Match(rel.Name(), tuples[i%len(tuples)], buf[:0])
			}
		})
	}
}
