// BenchmarkFollowerRead measures the replication read path over real
// TCP on loopback: match probes served by a caught-up follower,
// compared against the same probes on the leader, with and without a
// read-your-writes sequence token. BENCH_PR7.json records the results
// (see docs/REPLICATION.md).
package repro

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/repl"
	"predmatch/internal/server"
	"predmatch/internal/wal"
)

// startReplPair brings up a durable leader loaded with nRules salary
// rules and a follower streaming from it, and blocks until the
// follower has applied the whole setup.
func startReplPair(b *testing.B, nRules int) (leaderAddr, followerAddr string, token uint64, shutdown func()) {
	b.Helper()
	leader, err := server.Open(server.Config{
		Addr: "127.0.0.1:0", DataDir: b.TempDir(), Sync: wal.SyncOff, QueueLen: 1 << 14,
	})
	if err != nil {
		b.Fatal(err)
	}
	lerrc := make(chan error, 1)
	go func() { lerrc <- leader.ListenAndServe() }()
	for leader.Addr() == nil {
		select {
		case err := <-lerrc:
			b.Fatalf("leader serve: %v", err)
		default:
		}
	}
	leaderAddr = leader.Addr().String()

	admin, err := client.Dial(leaderAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer admin.Close()
	if err := admin.DeclareRelation(benchEmpRel); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < nRules; i++ {
		lo := 10000 + rng.Intn(80000)
		src := fmt.Sprintf("rule r%d on insert, update to emp when salary between %d and %d do log 'hit'",
			i, lo, lo+2000+rng.Intn(8000))
		if _, err := admin.DefineRule(src); err != nil {
			b.Fatal(err)
		}
	}
	token = admin.LastSeq()

	follower, err := server.Open(server.Config{
		Addr: "127.0.0.1:0", DataDir: b.TempDir(), Sync: wal.SyncOff,
		FollowerOf: leaderAddr, QueueLen: 1 << 14,
	})
	if err != nil {
		b.Fatal(err)
	}
	ferrc := make(chan error, 1)
	go func() { ferrc <- follower.ListenAndServe() }()
	for follower.Addr() == nil {
		select {
		case err := <-ferrc:
			b.Fatalf("follower serve: %v", err)
		default:
		}
	}
	followerAddr = follower.Addr().String()
	f := repl.New(leaderAddr, follower, repl.Options{})
	follower.AttachFollower(f, f.Stop)
	go f.Run()

	deadline := time.Now().Add(10 * time.Second)
	for follower.ReplAppliedSeq() < token {
		if time.Now().After(deadline) {
			b.Fatalf("follower stuck at %d, want %d", follower.ReplAppliedSeq(), token)
		}
		time.Sleep(time.Millisecond)
	}
	return leaderAddr, followerAddr, token, func() {
		f.Stop()
		follower.Close()
		leader.Close()
	}
}

// BenchmarkFollowerRead: one match probe per op, full round trip over
// loopback TCP. "leader" is the baseline serving path; "follower" the
// same probes against the replica; "follower-token" adds a min_seq
// read-your-writes token the replica has already applied (the steady
// state of a caught-up fleet — the token costs one atomic load).
func BenchmarkFollowerRead(b *testing.B) {
	const nRules = 256
	leaderAddr, followerAddr, token, shutdown := startReplPair(b, nRules)
	defer shutdown()

	cases := []struct {
		name   string
		addr   string
		minSeq uint64
	}{
		{"leader", leaderAddr, 0},
		{"follower", followerAddr, 0},
		{"follower-token", followerAddr, token},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			c, err := client.Dial(tc.addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.MatchAt("emp", benchEmp(rng), tc.minSeq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
