module predmatch

go 1.22
