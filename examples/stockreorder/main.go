// Stock reorder: the paper's Section 3 grocery-store scenario, both ways.
//
// A store sells thousands of items and wants a trigger when any item's
// stock falls below its reorder threshold. The paper contrasts two
// designs:
//
//   - Naive: one rule per item ("if stock of item 17 < 40 then reorder"),
//     which explodes the rule set — the hypothetical "tremendous number
//     of rules" case.
//   - Recommended: store the threshold as a field of the ITEMS table and
//     use a single rule comparing the two fields. "This second
//     implementation is clearly preferable."
//
// Our rule language compares attributes with constants (as the paper's
// predicate model does), so the single-rule design uses a derived
// "deficit" column: deficit = stock - threshold, with one rule firing on
// deficit < 0 — and the derived column itself is maintained by a second
// rule ("set deficit = stock - threshold"), so the whole design is two
// rules regardless of inventory size. The example runs both designs over
// the same event stream and shows they raise identical reorders, then
// prints the size of the predicate index each needs.
//
// Run with: go run ./examples/stockreorder
package main

import (
	"fmt"

	"predmatch/internal/core"
	"predmatch/internal/engine"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

const nItems = 500

type item struct {
	sku       int64
	stock     int64
	threshold int64
}

func makeItems() []item {
	items := make([]item, nItems)
	for i := range items {
		items[i] = item{
			sku: int64(i),
			// Stock starts at or above every threshold so no reorder is
			// due at load time.
			stock:     int64(70 + (i*7)%100),
			threshold: int64(30 + (i*13)%40),
		}
	}
	return items
}

// sales drains stock: (sku, amount) pairs.
func sales() [][2]int64 {
	var out [][2]int64
	for i := 0; i < nItems; i += 3 {
		out = append(out, [2]int64{int64(i), int64(20 + (i*11)%60)})
	}
	return out
}

// naiveDesign builds one rule per item.
func naiveDesign(items []item) (*engine.Engine, *storage.Table, *[]string) {
	db := storage.NewDB()
	rel := schema.MustRelation("items",
		schema.Attribute{Name: "sku", Type: value.KindInt},
		schema.Attribute{Name: "stock", Type: value.KindInt},
	)
	tab, err := db.CreateRelation(rel)
	if err != nil {
		panic(err)
	}
	funcs := pred.NewRegistry()
	var reorders []string
	eng := engine.New(db, funcs, core.New(db.Catalog(), funcs),
		engine.WithLogger(func(format string, args ...any) {
			reorders = append(reorders, fmt.Sprintf(format, args...))
		}))
	for _, it := range items {
		src := fmt.Sprintf(
			"rule reorder_%d on insert, update to items when sku = %d and stock < %d do log 'reorder'",
			it.sku, it.sku, it.threshold)
		if _, err := eng.DefineRule(src); err != nil {
			panic(err)
		}
	}
	return eng, tab, &reorders
}

// fieldDesign stores the threshold in the table and keeps a derived
// deficit column, both maintained by rules: one recomputes the deficit
// whenever a tuple changes, the other fires a reorder when it goes
// negative. Two rules, any inventory size.
func fieldDesign() (*engine.Engine, *storage.Table, *[]string) {
	db := storage.NewDB()
	rel := schema.MustRelation("items",
		schema.Attribute{Name: "sku", Type: value.KindInt},
		schema.Attribute{Name: "stock", Type: value.KindInt},
		schema.Attribute{Name: "threshold", Type: value.KindInt},
		schema.Attribute{Name: "deficit", Type: value.KindInt},
	)
	tab, err := db.CreateRelation(rel)
	if err != nil {
		panic(err)
	}
	funcs := pred.NewRegistry()
	var reorders []string
	eng := engine.New(db, funcs, core.New(db.Catalog(), funcs),
		engine.WithLogger(func(format string, args ...any) {
			reorders = append(reorders, fmt.Sprintf(format, args...))
		}))
	for _, src := range []string{
		"rule maintain priority 10 on insert, update to items do set deficit = stock - threshold",
		"rule reorder on update to items when deficit < 0 do log 'reorder'",
	} {
		if _, err := eng.DefineRule(src); err != nil {
			panic(err)
		}
	}
	return eng, tab, &reorders
}

func main() {
	items := makeItems()
	stream := sales()

	// ---- Design 1: one rule per item -------------------------------
	eng1, tab1, reorders1 := naiveDesign(items)
	ids1 := make(map[int64]tuple.ID)
	stocks := make(map[int64]int64)
	for _, it := range items {
		id, err := tab1.Insert(tuple.New(value.Int(it.sku), value.Int(it.stock)))
		if err != nil {
			panic(err)
		}
		ids1[it.sku] = id
		stocks[it.sku] = it.stock
	}
	for _, s := range stream {
		sku, amount := s[0], s[1]
		stocks[sku] -= amount
		if err := tab1.Update(ids1[sku], tuple.New(value.Int(sku), value.Int(stocks[sku]))); err != nil {
			panic(err)
		}
	}
	fmt.Printf("design 1 (one rule per item): %d rules, %d predicates indexed, %d reorders\n",
		len(eng1.Rules()), eng1.Matcher().Len(), len(*reorders1))

	// ---- Design 2: threshold as data, two rules --------------------
	// The application only writes stock levels; the maintain rule keeps
	// the deficit column current and the reorder rule watches it.
	eng2, tab2, reorders2 := fieldDesign()
	ids2 := make(map[int64]tuple.ID)
	for _, it := range items {
		id, err := tab2.Insert(tuple.New(
			value.Int(it.sku), value.Int(it.stock), value.Int(it.threshold),
			value.Int(it.stock-it.threshold)))
		if err != nil {
			panic(err)
		}
		ids2[it.sku] = id
	}
	for _, s := range stream {
		sku, amount := s[0], s[1]
		cur, _ := tab2.Get(ids2[sku])
		next := cur.Clone()
		next[1] = value.Int(cur[1].AsInt() - amount) // stock only; rules do the rest
		if err := tab2.Update(ids2[sku], next); err != nil {
			panic(err)
		}
	}
	fmt.Printf("design 2 (threshold as data):  %d rules, %d predicates indexed, %d reorders\n",
		len(eng2.Rules()), eng2.Matcher().Len(), len(*reorders2))

	if len(*reorders1) != len(*reorders2) {
		panic(fmt.Sprintf("designs disagree: %d vs %d reorders", len(*reorders1), len(*reorders2)))
	}
	fmt.Printf("both designs raised the same %d reorders — but design 2 keeps the\n", len(*reorders2))
	fmt.Println("knowledge in the data (two fixed rules) instead of the rule base,")
	fmt.Println("exactly the paper's Section 3 recommendation.")
}
