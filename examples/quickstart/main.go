// Quickstart: the library's two main entry points in one file.
//
//  1. The raw IBS-tree (internal/ibs): a dynamic interval index
//     answering "which intervals contain X" — the paper's Section 4.2
//     data structure.
//  2. The full predicate index (internal/core, the paper's Figure 1):
//     register conjunctive predicates over relations and ask which of
//     them match a tuple.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"predmatch/internal/core"
	"predmatch/internal/ibs"
	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func main() {
	fmt.Println("== 1. IBS-tree: dynamic interval stabbing ==")

	tree := ibs.New(intCmp) // balanced by default
	check := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	check(tree.Insert(1, interval.Closed(9, 19)))      // [9, 19]
	check(tree.Insert(2, interval.Closed(2, 7)))       // [2, 7]
	check(tree.Insert(3, interval.ClosedOpen(1, 3)))   // [1, 3)
	check(tree.Insert(4, interval.OpenClosed(17, 20))) // (17, 20]
	check(tree.Insert(5, interval.Point(18)))          // the equality predicate "= 18"
	check(tree.Insert(6, interval.AtMost(17)))         // (-inf, 17]

	for _, x := range []int{2, 7, 18, 25} {
		fmt.Printf("intervals containing %2d: %v\n", x, tree.Stab(x))
	}

	check(tree.Delete(6)) // intervals can be removed on-line
	fmt.Printf("after deleting id 6, intervals containing 2: %v\n", tree.Stab(2))
	fmt.Printf("tree: %d intervals, %d nodes, %d markers, height %d\n\n",
		tree.Len(), tree.NodeCount(), tree.MarkerCount(), tree.Height())

	fmt.Println("== 2. Predicate index: which predicates match a tuple ==")

	cat := schema.NewCatalog()
	emp := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt},
		schema.Attribute{Name: "dept", Type: value.KindString},
	)
	check(cat.Add(emp))
	funcs := pred.NewRegistry()

	ix := core.New(cat, funcs)

	// The paper's four example predicates:
	//   EMP.salary < 20000 and EMP.age > 50
	check(ix.Add(pred.New(1, "emp",
		pred.IvClause("salary", interval.Less(value.Int(20000))),
		pred.IvClause("age", interval.Greater(value.Int(50))),
	)))
	//   20000 <= EMP.salary <= 30000
	check(ix.Add(pred.New(2, "emp",
		pred.IvClause("salary", interval.Closed(value.Int(20000), value.Int(30000))),
	)))
	//   EMP.dept = 'sales'
	check(ix.Add(pred.New(3, "emp", pred.EqClause("dept", value.String_("sales")))))
	//   IsOdd(EMP.age) and EMP.dept = 'shoe'
	check(ix.Add(pred.New(4, "emp",
		pred.FnClause("age", "isodd"),
		pred.EqClause("dept", value.String_("shoe")),
	)))

	people := []tuple.Tuple{
		tuple.New(value.String_("ada"), value.Int(52), value.Int(18000), value.String_("deli")),
		tuple.New(value.String_("bob"), value.Int(33), value.Int(25000), value.String_("shoe")),
		tuple.New(value.String_("cyd"), value.Int(41), value.Int(90000), value.String_("sales")),
	}
	for _, t := range people {
		matches, err := ix.Match("emp", t, nil)
		check(err)
		fmt.Printf("%v matches predicates %v\n", t, matches)
	}

	fmt.Println("\nper-attribute IBS-trees inside the index:")
	for _, ts := range ix.Trees() {
		fmt.Printf("  %s.%s: %d intervals, height %d\n", ts.Rel, ts.Attr, ts.Intervals, ts.Height)
	}
}
