// Salary monitor: the paper's introduction examples as live triggers.
//
// The four example predicates of Section 1 —
//
//	EMP.salary < 20000 and EMP.age > 50
//	20000 <= EMP.salary <= 30000
//	EMP.job = 'salesperson'
//	IsOdd(EMP.age) and EMP.dept = 'shoe'
//
// — become monitoring rules over an EMP relation, together with an
// integrity rule that rejects illegal hires (the paper's "improved data
// integrity, monitoring capability" motivation). A small HR event stream
// runs through the engine; every firing is reported.
//
// Run with: go run ./examples/salarymonitor
package main

import (
	"fmt"

	"predmatch/internal/core"
	"predmatch/internal/engine"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func main() {
	db := storage.NewDB()
	emp := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt},
		schema.Attribute{Name: "job", Type: value.KindString},
		schema.Attribute{Name: "dept", Type: value.KindString},
	)
	tab, err := db.CreateRelation(emp)
	if err != nil {
		panic(err)
	}
	funcs := pred.NewRegistry()
	eng := engine.New(db, funcs, core.New(db.Catalog(), funcs),
		engine.WithLogger(func(format string, args ...any) {
			fmt.Printf("  -> "+format+"\n", args...)
		}))

	rules := []string{
		// The paper's example predicates, verbatim.
		`rule underpaid_senior on insert, update to emp
		   when salary < 20000 and age > 50
		   do log 'underpaid senior: review compensation'`,
		`rule mid_band on insert, update to emp
		   when salary between 20000 and 30000
		   do log 'mid salary band'`,
		`rule salesperson on insert to emp
		   when job = 'salesperson'
		   do log 'new salesperson: assign territory'`,
		`rule odd_shoe on insert, update to emp
		   when isodd(age) and dept = 'shoe'
		   do log 'IsOdd(age) and dept = shoe matched'`,
		// Integrity: reject hires below the legal working age.
		`rule min_age on insert to emp
		   when age < 16
		   do raise 'illegal hire: below minimum working age'`,
	}
	for _, src := range rules {
		if _, err := eng.DefineRule(src); err != nil {
			panic(err)
		}
	}

	hire := func(name string, age, salary int64, job, dept string) (tuple.ID, error) {
		fmt.Printf("hire %s (age %d, salary %d, %s, %s)\n", name, age, salary, job, dept)
		return tab.Insert(tuple.New(
			value.String_(name), value.Int(age), value.Int(salary),
			value.String_(job), value.String_(dept)))
	}

	ada, _ := hire("ada", 52, 18000, "clerk", "deli")
	_, _ = hire("bob", 33, 25000, "fitter", "shoe")
	_, _ = hire("cyd", 41, 45000, "salesperson", "sales")

	if _, err := hire("kid", 12, 1000, "helper", "shoe"); err != nil {
		fmt.Printf("  REJECTED: %v\n", err)
	}

	fmt.Println("raise for ada:")
	if err := tab.Update(ada, tuple.New(
		value.String_("ada"), value.Int(52), value.Int(26000),
		value.String_("clerk"), value.String_("deli"))); err != nil {
		panic(err)
	}

	fmt.Printf("\n%d employees stored; matcher %q holds %d predicates\n",
		tab.Len(), eng.Matcher().Name(), eng.Matcher().Len())
	if ix, ok := eng.Matcher().(*core.Index); ok {
		for _, ts := range ix.Trees() {
			fmt.Printf("  ibs-tree on %s.%s: %d intervals (height %d)\n",
				ts.Rel, ts.Attr, ts.Intervals, ts.Height)
		}
		fmt.Printf("  non-indexable predicates: %d\n", ix.NonIndexableCount("emp"))
	}
}
