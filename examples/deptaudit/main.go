// Deptaudit: the two-layer discrimination network (selection layer +
// join layer) the paper's conclusion plans for the Ariel rule engine.
//
// Rule: flag every employee earning over 50,000 whose department's
// budget is under 100,000 —
//
//	emp.salary > 50000  AND  emp.dept = dept.dname  AND  dept.budget < 100000
//
// The selection clauses on each relation go through the IBS-tree
// predicate index (layer 1); qualifying tuples populate TREAT-style
// alpha memories whose equi-join hash indexes complete the match
// (layer 2). The network is wired to the storage engine's change feed,
// so ordinary inserts/updates/deletes drive activations.
//
// Run with: go run ./examples/deptaudit
package main

import (
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/join"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func main() {
	db := storage.NewDB()
	emp := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "dept", Type: value.KindString},
		schema.Attribute{Name: "salary", Type: value.KindInt},
	)
	dept := schema.MustRelation("dept",
		schema.Attribute{Name: "dname", Type: value.KindString},
		schema.Attribute{Name: "budget", Type: value.KindInt},
	)
	empTab, err := db.CreateRelation(emp)
	if err != nil {
		panic(err)
	}
	deptTab, err := db.CreateRelation(dept)
	if err != nil {
		panic(err)
	}

	net := join.New(db.Catalog(), pred.NewRegistry(), func(a join.Activation) {
		fmt.Printf("  AUDIT rule %d: %s earns %s but %s has budget %s\n",
			a.Rule,
			a.Tuples[0][0], a.Tuples[0][2], // emp name, salary
			a.Tuples[1][0], a.Tuples[1][1]) // dept name, budget
	})
	// Drive the network from the storage change feed.
	db.Observe(func(ev storage.Event) error {
		switch ev.Op {
		case storage.OpInsert:
			return net.Insert(ev.Rel, ev.ID, ev.New)
		case storage.OpUpdate:
			return net.Update(ev.Rel, ev.ID, ev.New)
		case storage.OpDelete:
			net.Delete(ev.Rel, ev.ID)
		}
		return nil
	})

	rule := &join.Rule{
		ID: 1,
		Sides: []join.Side{
			{Rel: "emp", Pred: pred.New(0, "emp",
				pred.IvClause("salary", interval.Greater(value.Int(50000))))},
			{Rel: "dept", Pred: pred.New(0, "dept",
				pred.IvClause("budget", interval.Less(value.Int(100000))))},
		},
		Conditions: []join.Condition{{Left: 0, LeftAttr: "dept", Right: 1, RightAttr: "dname"}},
	}
	if err := net.AddRule(rule); err != nil {
		panic(err)
	}

	fmt.Println("load departments:")
	shoe, _ := deptTab.Insert(tuple.New(value.String_("shoe"), value.Int(60000)))
	_, _ = deptTab.Insert(tuple.New(value.String_("gold"), value.Int(5000000)))

	fmt.Println("hire employees:")
	_, _ = empTab.Insert(tuple.New(value.String_("ada"), value.String_("shoe"), value.Int(80000)))
	_, _ = empTab.Insert(tuple.New(value.String_("bob"), value.String_("shoe"), value.Int(30000)))  // salary too low
	_, _ = empTab.Insert(tuple.New(value.String_("cyd"), value.String_("gold"), value.Int(120000))) // rich dept

	fmt.Println("budget cut for gold (now the join fires for cyd):")
	if err := deptTab.Update(2, tuple.New(value.String_("gold"), value.Int(90000))); err != nil {
		panic(err)
	}

	fmt.Println("shoe department dissolved (no further activations for it):")
	if err := deptTab.Delete(shoe); err != nil {
		panic(err)
	}
	_, _ = empTab.Insert(tuple.New(value.String_("dee"), value.String_("shoe"), value.Int(200000)))

	fmt.Printf("\nalpha memories: emp side %d tuples, dept side %d tuples\n",
		net.MemorySize(1, 0), net.MemorySize(1, 1))
	fmt.Printf("layer-1 selection predicates: %d\n", net.SelectionIndex().Len())
}
