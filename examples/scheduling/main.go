// Scheduling: the IBS-tree outside the rule system.
//
// The paper's conclusion notes the IBS-tree "may be useful for other
// applications besides testing predicates, including VLSI CAD tools,
// geographic information systems ... anywhere an index for intervals is
// required which must be dynamically updatable." This example runs a
// meeting-room booking service: reservations are time intervals added
// and cancelled on-line, and queries ask "who occupies the room at time
// T" (a stabbing query) — plus an availability check implemented with
// interval overlap on top of stabbing the requested slot's endpoints.
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"time"

	"predmatch/internal/ibs"
	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// minutes since midnight make a convenient ordered domain.
func hm(h, m int) int64 { return int64(h*60 + m) }

func fmtTime(v int64) string {
	return fmt.Sprintf("%02d:%02d", v/60, v%60)
}

type booking struct {
	id    markset.ID
	who   string
	slot  interval.Interval[int64]
	begin time.Duration // unused; shows bookings could carry payloads
}

func cmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func main() {
	tree := ibs.New(cmp)
	byID := map[markset.ID]booking{}
	next := markset.ID(1)

	book := func(who string, from, to int64) markset.ID {
		// Half-open [from, to): back-to-back meetings don't collide.
		slot := interval.ClosedOpen(from, to)
		// Availability: any existing booking overlapping the slot? A
		// range-overlap query on the same index — no separate structure.
		if conflicts := tree.Overlapping(slot); len(conflicts) > 0 {
			c := byID[conflicts[0]]
			fmt.Printf("  %s: %s-%s CONFLICTS with %s (%s)\n",
				who, fmtTime(from), fmtTime(to), c.who, c.slot)
			return 0
		}
		id := next
		next++
		if err := tree.Insert(id, slot); err != nil {
			panic(err)
		}
		byID[id] = booking{id: id, who: who, slot: slot}
		fmt.Printf("  booked %s %s-%s (id %d)\n", who, fmtTime(from), fmtTime(to), id)
		return id
	}
	cancel := func(id markset.ID) {
		b := byID[id]
		if err := tree.Delete(id); err != nil {
			panic(err)
		}
		delete(byID, id)
		fmt.Printf("  cancelled %s %s (id %d)\n", b.who, b.slot, id)
	}
	occupant := func(at int64) {
		ids := tree.Stab(at)
		if len(ids) == 0 {
			fmt.Printf("  %s: room free\n", fmtTime(at))
			return
		}
		for _, id := range ids {
			fmt.Printf("  %s: occupied by %s (%s)\n", fmtTime(at), byID[id].who, byID[id].slot)
		}
	}

	fmt.Println("bookings:")
	standup := book("platform standup", hm(9, 0), hm(9, 30))
	book("design review", hm(9, 30), hm(11, 0)) // back-to-back: fine
	book("1:1 ada/bob", hm(11, 30), hm(12, 0))
	book("late sync", hm(10, 30), hm(11, 30)) // conflicts with design review

	fmt.Println("\nwho has the room?")
	for _, at := range []int64{hm(9, 15), hm(9, 30), hm(11, 10), hm(11, 45)} {
		occupant(at)
	}

	fmt.Println("\ncancel the standup and re-check 09:15:")
	cancel(standup)
	occupant(hm(9, 15))

	fmt.Println("\nall-day maintenance window (open-ended interval):")
	if err := tree.Insert(9999, interval.AtLeast(hm(18, 0))); err != nil {
		panic(err)
	}
	byID[9999] = booking{id: 9999, who: "maintenance", slot: interval.AtLeast(hm(18, 0))}
	occupant(hm(22, 0))

	fmt.Printf("\nindex: %d intervals, %d nodes, %d markers, height %d\n",
		tree.Len(), tree.NodeCount(), tree.MarkerCount(), tree.Height())
}
