// BenchmarkMutateWAL prices durability: one insert mutation per op
// over loopback TCP against daemons running the four durability
// configurations — memory (no WAL), and a data directory under each
// sync policy (off, interval, always). The parallel variants measure
// group commit: under sync=always, N concurrent writers should share
// fsyncs instead of paying one each.
package repro

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/server"
	"predmatch/internal/wal"
)

// startWALBenchServer is startBenchServer with a durability config.
// dir == "" runs memory-only.
func startWALBenchServer(b *testing.B, dir string, sync wal.SyncPolicy, nRules int) (addr string, shutdown func()) {
	b.Helper()
	srv, err := server.Open(server.Config{
		Addr:     "127.0.0.1:0",
		QueueLen: 1 << 14,
		DataDir:  dir,
		Sync:     sync,
	})
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	for srv.Addr() == nil {
		select {
		case err := <-errc:
			b.Fatalf("serve: %v", err)
		default:
		}
	}
	addr = srv.Addr().String()

	admin, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer admin.Close()
	if err := admin.DeclareRelation(benchEmpRel); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < nRules; i++ {
		lo := 10000 + rng.Intn(80000)
		src := fmt.Sprintf("rule r%d on insert, update to emp when salary between %d and %d do log 'hit'",
			i, lo, lo+2000+rng.Intn(8000))
		if _, err := admin.DefineRule(src); err != nil {
			b.Fatal(err)
		}
	}
	return addr, func() { srv.Close() }
}

func BenchmarkMutateWAL(b *testing.B) {
	const nRules = 16
	configs := []struct {
		name string
		dir  bool
		sync wal.SyncPolicy
	}{
		{"memory", false, wal.SyncOff},
		{"wal-off", true, wal.SyncOff},
		{"wal-interval", true, wal.SyncInterval},
		{"wal-always", true, wal.SyncAlways},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			dir := ""
			if cfg.dir {
				dir = b.TempDir()
			}
			addr, shutdown := startWALBenchServer(b, dir, cfg.sync, nRules)
			defer shutdown()
			c, err := client.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.Insert("emp", benchEmp(rng)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Group commit: 16 goroutines, one connection each, all inserting
	// under sync=always. Throughput should scale well past 1/fsync-cost
	// because concurrent appends share a single fsync.
	b.Run("wal-always-parallel", func(b *testing.B) {
		addr, shutdown := startWALBenchServer(b, b.TempDir(), wal.SyncAlways, nRules)
		defer shutdown()
		var seed atomic.Int64
		b.SetParallelism(4) // 4 × GOMAXPROCS writers
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			c, err := client.Dial(addr, client.WithTimeout(30*time.Second))
			if err != nil {
				b.Error(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed.Add(1)))
			for pb.Next() {
				if _, _, err := c.Insert("emp", benchEmp(rng)); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
