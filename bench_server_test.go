// BenchmarkServer* measure the predmatchd serving layer over real TCP
// on loopback: protocol framing + dispatch cost on top of the engine,
// for the three request classes a client cares about — lock-free match
// probes, batched probes, and mutations through the rule engine with a
// live subscriber draining the notification stream.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"predmatch/internal/client"
	"predmatch/internal/schema"
	"predmatch/internal/server"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// startBenchServer brings up a daemon on a loopback port, loads the
// Section 5.2 style emp schema with nPreds rule predicates, and returns
// the dial address.
func startBenchServer(b *testing.B, nRules int) (addr string, shutdown func()) {
	b.Helper()
	srv := server.New(server.Config{Addr: "127.0.0.1:0", QueueLen: 1 << 14})
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	for srv.Addr() == nil {
		select {
		case err := <-errc:
			b.Fatalf("serve: %v", err)
		default:
		}
	}
	addr = srv.Addr().String()

	admin, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer admin.Close()
	if err := admin.DeclareRelation(benchEmpRel); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < nRules; i++ {
		lo := 10000 + rng.Intn(80000)
		src := fmt.Sprintf("rule r%d on insert, update to emp when salary between %d and %d do log 'hit'",
			i, lo, lo+2000+rng.Intn(8000))
		if _, err := admin.DefineRule(src); err != nil {
			b.Fatal(err)
		}
	}
	return addr, func() { srv.Close() }
}

var benchEmpRel = schema.MustRelation("emp",
	schema.Attribute{Name: "name", Type: value.KindString},
	schema.Attribute{Name: "age", Type: value.KindInt},
	schema.Attribute{Name: "salary", Type: value.KindInt},
	schema.Attribute{Name: "dept", Type: value.KindString},
)

func benchEmp(rng *rand.Rand) tuple.Tuple {
	return tuple.New(
		value.String_(fmt.Sprintf("w%d", rng.Intn(100))),
		value.Int(int64(20+rng.Intn(50))),
		value.Int(int64(10000+rng.Intn(90000))),
		value.String_([]string{"shoe", "toy", "deli"}[rng.Intn(3)]),
	)
}

// BenchmarkServerMatch is one match probe per op: a full request
// round trip over loopback TCP through the lock-free snapshot path.
func BenchmarkServerMatch(b *testing.B) {
	for _, nRules := range []int{16, 256} {
		b.Run(fmt.Sprintf("rules=%d", nRules), func(b *testing.B) {
			addr, shutdown := startBenchServer(b, nRules)
			defer shutdown()
			c, err := client.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Match("emp", benchEmp(rng)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerMatchBatch amortizes framing over 64 tuples per
// request; the metric is per-tuple.
func BenchmarkServerMatchBatch(b *testing.B) {
	const batch = 64
	addr, shutdown := startBenchServer(b, 256)
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(7))
	tuples := make([]tuple.Tuple, batch)
	for i := range tuples {
		tuples[i] = benchEmp(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MatchBatch("emp", tuples); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/tuple")
}

// BenchmarkServerInsert is one rule-firing mutation per op while a
// subscriber drains the notification stream on a second connection.
func BenchmarkServerInsert(b *testing.B) {
	for _, nRules := range []int{16, 256} {
		b.Run(fmt.Sprintf("rules=%d", nRules), func(b *testing.B) {
			addr, shutdown := startBenchServer(b, nRules)
			defer shutdown()
			c, err := client.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			sub, err := client.Dial(addr, client.WithNotifyBuffer(1<<14))
			if err != nil {
				b.Fatal(err)
			}
			defer sub.Close()
			notes, err := sub.Subscribe(false)
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for range notes {
				}
			}()
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.Insert("emp", benchEmp(rng)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
